//! Dynamic process management: `MPI_Comm_spawn`.
//!
//! This is the MPI feature the whole reconfiguration scheme hangs on
//! (§V-B1: "the updated list of nodes is gathered and used in a call to
//! `MPI_Comm_spawn` in order to create a new set of processes"). The call
//! is collective over the parent communicator; every parent rank receives
//! an [`InterComm`] to the children, and each child's [`Comm::parent`]
//! returns the mirror image.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::comm::{Comm, InterComm};

/// The child entry point: receives the child-world communicator (whose
/// [`Comm::parent`] is connected to the spawning group).
pub type SpawnEntry = Arc<dyn Fn(Comm) + Send + Sync>;

/// SplitMix64: a tiny, stateless bit mixer — enough randomness to decide
/// fault verdicts without pulling a PRNG crate into the MPI substrate.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic spawn-fault injector for [`Comm::spawn_faulty`].
///
/// Each call to [`SpawnFaults::should_fail`] advances a shared counter
/// and mixes it with the seed, so a given `(seed, probability)` pair
/// produces the same fail/pass sequence on every run — regardless of
/// thread interleaving elsewhere, because only the spawn root draws.
#[derive(Debug)]
pub struct SpawnFaults {
    seed: u64,
    fail_p: f64,
    calls: AtomicU64,
}

impl SpawnFaults {
    /// An injector that kills each spawn independently with probability
    /// `fail_p` (clamped to `[0, 1]`), deterministically per `seed`.
    pub fn new(seed: u64, fail_p: f64) -> Self {
        Self {
            seed,
            fail_p: fail_p.clamp(0.0, 1.0),
            calls: AtomicU64::new(0),
        }
    }

    /// An injector that never fires (useful as a test control).
    pub fn never() -> Self {
        Self::new(0, 0.0)
    }

    /// An injector that kills every spawn.
    pub fn always() -> Self {
        Self::new(0, 1.0)
    }

    /// Draws the next verdict. Only the spawn root should call this —
    /// non-root ranks learn the verdict through the collective broadcast
    /// — so the counter sequence is single-threaded and reproducible.
    pub fn should_fail(&self) -> bool {
        let draw = self.calls.fetch_add(1, Ordering::Relaxed);
        let z = splitmix64(self.seed ^ draw.wrapping_mul(0xD605_0BB5_9DF4_4EB5));
        // Top 53 bits → uniform f64 in [0, 1).
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        u < self.fail_p
    }

    /// How many verdicts have been drawn so far.
    pub fn draws(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl Comm {
    /// Collectively spawns `n` new ranks running `entry` and returns the
    /// inter-communicator to them.
    ///
    /// Rank 0 performs the launch (like `MPI_Comm_spawn`'s `root`); all
    /// ranks must call with the same `n`. The spawned threads are joined
    /// by the [`crate::universe::Universe`] at teardown.
    pub fn spawn(&mut self, n: usize, entry: SpawnEntry) -> Result<InterComm, crate::MpiError> {
        assert!(n > 0, "cannot spawn an empty process set");
        self.spawn_inner(n, entry)
    }

    /// [`Comm::spawn`] with a fault-injection hook: before any child
    /// resource is allocated, rank 0 draws a verdict from `faults` and
    /// broadcasts it, so either every rank gets the inter-communicator or
    /// every rank gets [`crate::MpiError::SpawnInjected`] — the collective
    /// stays consistent and the parent set can degrade gracefully to its
    /// current size.
    ///
    /// All ranks must pass the same `faults.is_some()`; with `None` this
    /// is exactly `spawn` (no extra broadcast, no verdict drawn).
    pub fn spawn_faulty(
        &mut self,
        n: usize,
        entry: SpawnEntry,
        faults: Option<&SpawnFaults>,
    ) -> Result<InterComm, crate::MpiError> {
        assert!(n > 0, "cannot spawn an empty process set");
        if let Some(faults) = faults {
            let mut verdict: Vec<u64> = if self.rank == 0 {
                vec![u64::from(faults.should_fail())]
            } else {
                Vec::new()
            };
            self.bcast(&mut verdict, 0)?;
            if verdict[0] != 0 {
                return Err(crate::MpiError::SpawnInjected { comm: self.comm_id });
            }
        }
        self.spawn_inner(n, entry)
    }

    fn spawn_inner(&mut self, n: usize, entry: SpawnEntry) -> Result<InterComm, crate::MpiError> {
        // Root allocates three communicator id spaces: the child world,
        // and the two directional sides of the inter-communicator.
        let mut ids: Vec<u64> = if self.rank == 0 {
            let child_world = self.registry.alloc_comm_id();
            let parent_side = self.registry.alloc_comm_id();
            let child_side = self.registry.alloc_comm_id();
            self.registry.create_endpoints(child_world, n);
            self.registry.create_endpoints(parent_side, self.size());
            self.registry.create_endpoints(child_side, n);
            vec![child_world, parent_side, child_side]
        } else {
            Vec::new()
        };
        self.bcast(&mut ids, 0)?;
        let (child_world, parent_side, child_side) = (ids[0], ids[1], ids[2]);

        if self.rank == 0 {
            let parent_size = self.size();
            for child_rank in 0..n {
                let registry = Arc::clone(&self.registry);
                let entry = Arc::clone(&entry);
                let handle = std::thread::Builder::new()
                    .name(format!("rank{child_rank}.c{child_world}"))
                    .spawn(move || {
                        let parent = InterComm::new(
                            &registry,
                            child_side,
                            parent_side,
                            child_rank,
                            n,
                            parent_size,
                        );
                        let comm = Comm::new(
                            Arc::clone(&registry),
                            child_world,
                            child_rank,
                            n,
                            Some(parent),
                        );
                        entry(comm);
                    })
                    .expect("spawn rank thread");
                self.registry.track_child(handle);
            }
        }
        Ok(InterComm::new(
            &self.registry,
            parent_side,
            child_side,
            self.rank,
            self.size(),
            n,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use crate::MpiError;

    #[test]
    fn faults_are_deterministic_per_seed() {
        let a = SpawnFaults::new(0xFA17, 0.5);
        let b = SpawnFaults::new(0xFA17, 0.5);
        let seq_a: Vec<bool> = (0..64).map(|_| a.should_fail()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.should_fail()).collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.draws(), 64);
        // A fair injector actually mixes verdicts over 64 draws.
        assert!(seq_a.iter().any(|&v| v) && seq_a.iter().any(|&v| !v));
        let c = SpawnFaults::new(0xBEEF, 0.5);
        let seq_c: Vec<bool> = (0..64).map(|_| c.should_fail()).collect();
        assert_ne!(seq_a, seq_c, "different seeds draw different sequences");
    }

    #[test]
    fn never_and_always_are_exact() {
        let never = SpawnFaults::never();
        assert!((0..50).all(|_| !never.should_fail()));
        let always = SpawnFaults::always();
        assert!((0..50).all(|_| always.should_fail()));
        // Out-of-range probabilities clamp instead of misbehaving.
        assert!(!SpawnFaults::new(1, -3.0).should_fail());
        assert!(SpawnFaults::new(1, 7.0).should_fail());
    }

    #[test]
    fn injected_spawn_fails_on_every_rank_and_set_survives() {
        let faults = Arc::new(SpawnFaults::always());
        let got = Universe::run(3, move |mut comm| {
            let entry: SpawnEntry = Arc::new(|_child| {});
            let res = comm.spawn_faulty(2, entry, Some(&faults));
            assert!(
                matches!(res, Err(MpiError::SpawnInjected { .. })),
                "injector kills the spawn"
            );
            // The verdict was collective and no child resources were
            // allocated: the parent set is intact and can still talk.
            let mut probe = if comm.rank() == 0 { vec![9u64] } else { vec![] };
            comm.bcast(&mut probe, 0).unwrap();
            probe[0]
        });
        assert_eq!(got, vec![9, 9, 9]);
    }

    #[test]
    fn quiet_injector_lets_spawn_through() {
        let faults = Arc::new(SpawnFaults::never());
        let worker_faults = Arc::clone(&faults);
        let got = Universe::run(2, move |mut comm| {
            let entry: SpawnEntry = Arc::new(|mut child: Comm| {
                let me = child.rank();
                let p = child.parent().unwrap();
                if me == 0 {
                    p.send(&[11u64], 0, 1).unwrap();
                }
            });
            let mut inter = comm
                .spawn_faulty(1, entry, Some(&worker_faults))
                .expect("probability-zero injector never fires");
            if comm.rank() == 0 {
                let (d, _) = inter.recv::<u64>(Some(0), Some(1)).unwrap();
                d[0]
            } else {
                0
            }
        });
        assert_eq!(got[0], 11);
        // Only the root draws a verdict — one spawn, one draw.
        assert_eq!(faults.draws(), 1);
    }

    #[test]
    fn spawn_faulty_without_injector_is_plain_spawn() {
        let got = Universe::run(1, |mut comm| {
            let entry: SpawnEntry = Arc::new(|mut child: Comm| {
                let p = child.parent().unwrap();
                p.send(&[5u64], 0, 2).unwrap();
            });
            let mut inter = comm.spawn_faulty(1, entry, None).unwrap();
            let (d, _) = inter.recv::<u64>(Some(0), Some(2)).unwrap();
            d[0]
        });
        assert_eq!(got, vec![5]);
    }
}
