//! The launcher: runs an SPMD closure over a fresh world communicator.

use std::sync::Arc;

use crate::comm::Comm;
use crate::registry::Registry;

/// Launches rank sets and owns their lifetime (an in-process `mpiexec`).
pub struct Universe;

impl Universe {
    /// Runs `f` on `world` ranks (threads), each handed its own world
    /// [`Comm`]. Returns the per-rank results in rank order after every
    /// rank — including any dynamically spawned descendants — has
    /// finished.
    ///
    /// Panics if any rank panics (test-friendly fail-fast).
    pub fn run<T, F>(world: usize, f: F) -> Vec<T>
    where
        F: Fn(Comm) -> T + Send + Sync + 'static,
        T: Send + 'static,
    {
        assert!(world > 0, "world must have at least one rank");
        let registry = Arc::new(Registry::new());
        let world_id = registry.alloc_comm_id();
        registry.create_endpoints(world_id, world);
        let f = Arc::new(f);
        let handles: Vec<_> = (0..world)
            .map(|rank| {
                let registry = Arc::clone(&registry);
                let f = Arc::clone(&f);
                std::thread::Builder::new()
                    .name(format!("rank{rank}.world"))
                    .spawn(move || {
                        let comm = Comm::new(Arc::clone(&registry), world_id, rank, world, None);
                        f(comm)
                    })
                    .expect("spawn world rank")
            })
            .collect();
        let results: Vec<T> = handles
            .into_iter()
            .map(|h| h.join().expect("world rank panicked"))
            .collect();
        registry.join_children();
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{ANY_SOURCE, ANY_TAG};
    use std::sync::Arc;

    #[test]
    fn ranks_know_who_they_are() {
        let ids = Universe::run(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn point_to_point_ring() {
        // Each rank sends its id to the next; receives from the previous.
        let got = Universe::run(5, |mut comm| {
            let me = comm.rank();
            let n = comm.size();
            comm.send(&[me as u64], (me + 1) % n, 1).unwrap();
            let (data, status) = comm.recv::<u64>(Some((me + n - 1) % n), Some(1)).unwrap();
            assert_eq!(status.source, (me + n - 1) % n);
            data[0]
        });
        assert_eq!(got, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn wildcard_receive_collects_everything() {
        let got = Universe::run(4, |mut comm| {
            if comm.rank() == 0 {
                let mut sum = 0u64;
                for _ in 0..3 {
                    let (data, _) = comm.recv::<u64>(ANY_SOURCE, ANY_TAG).unwrap();
                    sum += data[0];
                }
                sum
            } else {
                comm.send(&[comm.rank() as u64 * 10], 0, 9).unwrap();
                0
            }
        });
        assert_eq!(got[0], 60);
    }

    #[test]
    fn irecv_waitall() {
        let got = Universe::run(3, |mut comm| {
            if comm.rank() == 0 {
                let reqs: Vec<_> = (1..3).map(|src| comm.irecv(Some(src), Some(5))).collect();
                let data = comm.waitall::<f64>(&reqs).unwrap();
                data.into_iter().flatten().sum::<f64>()
            } else {
                comm.send(&[comm.rank() as f64], 0, 5).unwrap();
                0.0
            }
        });
        assert_eq!(got[0], 3.0);
    }

    #[test]
    fn barrier_and_bcast() {
        let got = Universe::run(4, |mut comm| {
            comm.barrier().unwrap();
            let mut data = if comm.rank() == 2 {
                vec![7.5f64, 8.5]
            } else {
                vec![]
            };
            comm.bcast(&mut data, 2).unwrap();
            data
        });
        for d in got {
            assert_eq!(d, vec![7.5, 8.5]);
        }
    }

    #[test]
    fn reductions() {
        let got = Universe::run(4, |mut comm| {
            let mine = vec![comm.rank() as f64, 1.0];
            comm.allreduce_sum(&mine).unwrap()
        });
        for d in got {
            assert_eq!(d, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn gather_and_scatter() {
        let got = Universe::run(3, |mut comm| {
            let gathered = comm.gather(&[comm.rank() as u32], 1).unwrap();
            if comm.rank() == 1 {
                let g = gathered.unwrap();
                assert_eq!(g, vec![vec![0], vec![1], vec![2]]);
            }
            let chunks: Option<Vec<Vec<u32>>> = if comm.rank() == 0 {
                Some(vec![vec![10], vec![20, 21], vec![30]])
            } else {
                None
            };
            comm.scatter(chunks.as_deref(), 0).unwrap()
        });
        assert_eq!(got, vec![vec![10], vec![20, 21], vec![30]]);
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let got = Universe::run(4, |mut comm| {
            let mine: Vec<u64> = vec![comm.rank() as u64; comm.rank() + 1];
            comm.allgather(&mine).unwrap()
        });
        let expect = vec![0u64, 1, 1, 2, 2, 2, 3, 3, 3, 3];
        for d in got {
            assert_eq!(d, expect);
        }
    }

    #[test]
    fn spawn_connects_parent_and_children() {
        // Parent world of 2 spawns 3 children; parents send rank-tagged
        // values, children echo them back doubled.
        let got = Universe::run(2, |mut comm| {
            let entry = Arc::new(|mut child: Comm| {
                let me = child.rank();
                let parent = child.parent().expect("children have a parent");
                assert_eq!(parent.remote_size(), 2);
                assert_eq!(parent.local_size(), 3);
                let (data, st) = parent.recv::<u64>(ANY_SOURCE, Some(1)).unwrap();
                parent
                    .send(&[data[0] * 2, me as u64], st.source, 2)
                    .unwrap();
            });
            let mut inter = comm.spawn(3, entry).unwrap();
            assert_eq!(inter.remote_size(), 3);
            // Parent rank r sends to child r (parent 0 also feeds child 2).
            let me = comm.rank();
            inter.send(&[100 + me as u64], me, 1).unwrap();
            if me == 0 {
                inter.send(&[200u64], 2, 1).unwrap();
            }
            let mut replies = vec![];
            let expected = if me == 0 { 2 } else { 1 };
            for _ in 0..expected {
                let (data, _) = inter.recv::<u64>(ANY_SOURCE, Some(2)).unwrap();
                replies.push(data[0]);
            }
            replies.sort_unstable();
            replies
        });
        assert_eq!(got[0], vec![200, 400]);
        assert_eq!(got[1], vec![202]);
    }

    #[test]
    fn nested_spawn_grandchildren() {
        let got = Universe::run(1, |mut comm| {
            let entry = Arc::new(|mut child: Comm| {
                // The child spawns a grandchild and relays its answer up.
                let grand_entry = Arc::new(|mut g: Comm| {
                    let p = g.parent().unwrap();
                    p.send(&[42u64], 0, 3).unwrap();
                });
                let mut ginter = child.spawn(1, grand_entry).unwrap();
                let (data, _) = ginter.recv::<u64>(Some(0), Some(3)).unwrap();
                let p = child.parent().unwrap();
                p.send(&[data[0] + 1], 0, 4).unwrap();
            });
            let mut inter = comm.spawn(1, entry).unwrap();
            let (data, _) = inter.recv::<u64>(Some(0), Some(4)).unwrap();
            data[0]
        });
        assert_eq!(got, vec![43]);
    }

    #[test]
    fn world_parent_is_none() {
        let got = Universe::run(2, |mut comm| comm.parent().is_none());
        assert_eq!(got, vec![true, true]);
    }

    #[test]
    fn invalid_rank_errors() {
        Universe::run(2, |comm| {
            let err = comm.send(&[1u8], 5, 0).unwrap_err();
            assert!(matches!(
                err,
                crate::MpiError::InvalidRank { rank: 5, size: 2 }
            ));
        });
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn minimal_spawn_echo() {
        let got = Universe::run(1, |mut comm| {
            let entry = Arc::new(|mut child: Comm| {
                let p = child.parent().unwrap();
                let (d, st) = p.recv::<u64>(None, Some(1)).unwrap();
                p.send(&[d[0] + 1], st.source, 2).unwrap();
            });
            let mut inter = comm.spawn(2, entry).unwrap();
            inter.send(&[5u64], 0, 1).unwrap();
            inter.send(&[7u64], 1, 1).unwrap();
            let (a, _) = inter.recv::<u64>(None, Some(2)).unwrap();
            let (b, _) = inter.recv::<u64>(None, Some(2)).unwrap();
            a[0] + b[0]
        });
        assert_eq!(got, vec![14]);
    }
}
