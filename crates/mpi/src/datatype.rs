//! Plain-old-data payload encoding.
//!
//! MPI ships typed buffers; we encode slices of primitives into little-
//! endian bytes. The trait is sealed to primitives with a fixed-width
//! encoding so decoding can never misinterpret lengths.

use bytes::{Bytes, BytesMut};

mod sealed {
    pub trait Sealed {}
}

/// Types that can travel through a communicator.
pub trait MpiData: Copy + Send + 'static + sealed::Sealed {
    const WIDTH: usize;
    const NAME: &'static str;
    fn write(self, out: &mut Vec<u8>);
    fn read(bytes: &[u8]) -> Self;
    /// Element-wise sum, for reductions. Non-numeric impls may panic.
    fn add(self, other: Self) -> Self;
}

macro_rules! impl_mpi_data {
    ($($t:ty),*) => {$(
        impl sealed::Sealed for $t {}
        impl MpiData for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            const NAME: &'static str = stringify!($t);
            #[inline]
            fn write(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("width checked"))
            }
            #[inline]
            fn add(self, other: Self) -> Self {
                self + other
            }
        }
    )*};
}

impl_mpi_data!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64, usize, isize);

/// Encodes a slice into a contiguous byte payload.
pub fn encode<T: MpiData>(data: &[T]) -> Bytes {
    let mut out = Vec::with_capacity(data.len() * T::WIDTH);
    for &v in data {
        v.write(&mut out);
    }
    Bytes::from(out)
}

/// Decodes a byte payload back into a vector; `None` if the length is not
/// a multiple of the element width.
pub fn decode<T: MpiData>(bytes: &Bytes) -> Option<Vec<T>> {
    if !bytes.len().is_multiple_of(T::WIDTH) {
        return None;
    }
    Some(bytes.chunks_exact(T::WIDTH).map(T::read).collect())
}

/// Reserve for future zero-copy paths: an empty payload.
pub fn empty() -> Bytes {
    Bytes::new()
}

#[allow(unused)]
fn bytes_mut_reserved(cap: usize) -> BytesMut {
    BytesMut::with_capacity(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_f64() {
        let data = vec![1.5f64, -2.25, 0.0, f64::MAX];
        let b = encode(&data);
        assert_eq!(b.len(), 32);
        assert_eq!(decode::<f64>(&b).unwrap(), data);
    }

    #[test]
    fn round_trip_integers() {
        let data = vec![0u32, 1, u32::MAX];
        assert_eq!(decode::<u32>(&encode(&data)).unwrap(), data);
        let data = vec![-5i64, 0, i64::MIN];
        assert_eq!(decode::<i64>(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty_slice() {
        let b = encode::<f64>(&[]);
        assert!(b.is_empty());
        assert_eq!(decode::<f64>(&b).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn misaligned_decode_fails() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert!(decode::<f64>(&b).is_none());
        assert!(decode::<u16>(&b).is_none());
        assert!(decode::<u8>(&b).is_some());
    }

    #[test]
    fn add_sums() {
        assert_eq!(3.5f64.add(1.5), 5.0);
        assert_eq!(2u32.add(3), 5);
    }
}
