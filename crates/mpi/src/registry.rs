//! Global rank/communicator registry — the PMI of this substrate.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;

use crossbeam::channel::Sender;
use parking_lot::Mutex;

use crate::mailbox::{endpoint, Envelope, Mailbox};

/// Process-management state shared by every rank of a universe: senders
/// for routing, unclaimed mailboxes, fresh communicator ids, and join
/// handles of dynamically spawned rank threads.
pub struct Registry {
    senders: Mutex<HashMap<(u64, usize), Sender<Envelope>>>,
    inboxes: Mutex<HashMap<(u64, usize), Mailbox>>,
    next_comm_id: AtomicU64,
    child_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            senders: Mutex::new(HashMap::new()),
            inboxes: Mutex::new(HashMap::new()),
            next_comm_id: AtomicU64::new(0),
            child_handles: Mutex::new(Vec::new()),
        }
    }

    /// Allocates a fresh communicator id.
    pub fn alloc_comm_id(&self) -> u64 {
        self.next_comm_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Creates mailboxes for ranks `0..n` of communicator `comm_id`.
    pub fn create_endpoints(&self, comm_id: u64, n: usize) {
        let mut senders = self.senders.lock();
        let mut inboxes = self.inboxes.lock();
        for rank in 0..n {
            let (tx, mb) = endpoint(comm_id, rank);
            senders.insert((comm_id, rank), tx);
            inboxes.insert((comm_id, rank), mb);
        }
    }

    /// Claims the receiving end of a mailbox; each may be taken once, by
    /// the owning rank thread. Panics on double-take (a wiring bug).
    pub fn take_mailbox(&self, comm_id: u64, rank: usize) -> Mailbox {
        self.inboxes
            .lock()
            .remove(&(comm_id, rank))
            .unwrap_or_else(|| panic!("mailbox ({comm_id},{rank}) missing or already taken"))
    }

    /// Sender handles for ranks `0..n` of a communicator (cached by `Comm`
    /// so sends need no lock).
    pub fn senders_for(&self, comm_id: u64, n: usize) -> Vec<Sender<Envelope>> {
        let senders = self.senders.lock();
        (0..n)
            .map(|rank| {
                senders
                    .get(&(comm_id, rank))
                    .unwrap_or_else(|| panic!("no endpoint for ({comm_id},{rank})"))
                    .clone()
            })
            .collect()
    }

    /// Tracks a dynamically spawned rank thread so the universe can join
    /// it before tearing down.
    pub fn track_child(&self, handle: JoinHandle<()>) {
        self.child_handles.lock().push(handle);
    }

    /// Joins all spawned rank threads (children may spawn grandchildren
    /// while we drain, hence the loop).
    pub fn join_children(&self) {
        loop {
            let batch: Vec<JoinHandle<()>> = std::mem::take(&mut *self.child_handles.lock());
            if batch.is_empty() {
                return;
            }
            for h in batch {
                h.join().expect("spawned rank panicked");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_ids_are_unique() {
        let r = Registry::new();
        let a = r.alloc_comm_id();
        let b = r.alloc_comm_id();
        assert_ne!(a, b);
    }

    #[test]
    fn endpoints_route_messages() {
        let r = Registry::new();
        let id = r.alloc_comm_id();
        r.create_endpoints(id, 2);
        let senders = r.senders_for(id, 2);
        let mut mb1 = r.take_mailbox(id, 1);
        senders[1]
            .send(Envelope {
                src: 0,
                tag: 3,
                payload: bytes::Bytes::from_static(b"hi"),
            })
            .unwrap();
        let env = mb1.recv(Some(0), Some(3)).unwrap();
        assert_eq!(&env.payload[..], b"hi");
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn double_take_panics() {
        let r = Registry::new();
        let id = r.alloc_comm_id();
        r.create_endpoints(id, 1);
        let _a = r.take_mailbox(id, 0);
        let _b = r.take_mailbox(id, 0);
    }

    #[test]
    fn join_children_handles_nesting() {
        let r = std::sync::Arc::new(Registry::new());
        let r2 = r.clone();
        r.track_child(std::thread::spawn(move || {
            r2.track_child(std::thread::spawn(|| {}));
        }));
        r.join_children();
        assert!(r.child_handles.lock().is_empty());
    }
}
