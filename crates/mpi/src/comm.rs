//! Communicators: typed point-to-point and collectives.

use std::sync::Arc;

use crossbeam::channel::Sender;

use crate::datatype::{decode, encode, MpiData};
use crate::error::MpiError;
use crate::mailbox::{Envelope, Mailbox};
use crate::registry::Registry;

/// Wildcard source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Option<usize> = None;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: Option<i32> = None;

/// Completion information of a receive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Status {
    pub source: usize,
    pub tag: i32,
}

/// A posted non-blocking receive; redeem with [`Comm::wait`] /
/// [`InterComm::wait`].
#[derive(Clone, Copy, Debug)]
pub struct RecvRequest {
    pub(crate) src: Option<usize>,
    pub(crate) tag: Option<i32>,
}

/// An intra-communicator handle owned by one rank (thread).
pub struct Comm {
    pub(crate) registry: Arc<Registry>,
    pub(crate) comm_id: u64,
    pub(crate) rank: usize,
    pub(crate) peers: Vec<Sender<Envelope>>,
    pub(crate) mailbox: Mailbox,
    /// Collective sequence number — every rank executes collectives in the
    /// same order, so equal counters pair up matching internal tags.
    pub(crate) coll_seq: u64,
    pub(crate) parent: Option<InterComm>,
}

impl Comm {
    pub(crate) fn new(
        registry: Arc<Registry>,
        comm_id: u64,
        rank: usize,
        size: usize,
        parent: Option<InterComm>,
    ) -> Self {
        let peers = registry.senders_for(comm_id, size);
        let mailbox = registry.take_mailbox(comm_id, rank);
        Comm {
            registry,
            comm_id,
            rank,
            peers,
            mailbox,
            coll_seq: 0,
            parent,
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.peers.len()
    }

    /// The parent inter-communicator, for ranks created by
    /// [`Comm::spawn`] (`MPI_Comm_get_parent`).
    pub fn parent(&mut self) -> Option<&mut InterComm> {
        self.parent.as_mut()
    }

    fn check_rank(&self, rank: usize) -> Result<(), MpiError> {
        if rank >= self.size() {
            Err(MpiError::InvalidRank {
                rank,
                size: self.size(),
            })
        } else {
            Ok(())
        }
    }

    /// Blocking standard-mode send (buffered: completes immediately).
    pub fn send<T: MpiData>(&self, data: &[T], dst: usize, tag: i32) -> Result<(), MpiError> {
        self.check_rank(dst)?;
        self.peers[dst]
            .send(Envelope {
                src: self.rank,
                tag,
                payload: encode(data),
            })
            .map_err(|_| MpiError::PeerGone {
                comm: self.comm_id,
                rank: dst,
            })
    }

    /// Non-blocking send. The substrate buffers eagerly, so the request
    /// completes at post time — provided for source compatibility with the
    /// paper's `MPI_Isend` call sites.
    pub fn isend<T: MpiData>(&self, data: &[T], dst: usize, tag: i32) -> Result<(), MpiError> {
        self.send(data, dst, tag)
    }

    /// Blocking matched receive.
    pub fn recv<T: MpiData>(
        &mut self,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> Result<(Vec<T>, Status), MpiError> {
        let env = self.mailbox.recv(src, tag)?;
        let data = decode::<T>(&env.payload).ok_or(MpiError::TypeMismatch {
            expected: T::NAME,
            bytes: env.payload.len(),
        })?;
        Ok((
            data,
            Status {
                source: env.src,
                tag: env.tag,
            },
        ))
    }

    /// Posts a non-blocking receive; complete it with [`Comm::wait`].
    pub fn irecv(&self, src: Option<usize>, tag: Option<i32>) -> RecvRequest {
        RecvRequest { src, tag }
    }

    /// Completes a posted receive (`MPI_Wait`).
    pub fn wait<T: MpiData>(&mut self, req: RecvRequest) -> Result<(Vec<T>, Status), MpiError> {
        self.recv(req.src, req.tag)
    }

    /// Completes a set of posted receives in order (`MPI_Waitall`).
    pub fn waitall<T: MpiData>(&mut self, reqs: &[RecvRequest]) -> Result<Vec<Vec<T>>, MpiError> {
        reqs.iter().map(|r| Ok(self.wait::<T>(*r)?.0)).collect()
    }

    /// Non-blocking probe for a matching message.
    pub fn probe(&mut self, src: Option<usize>, tag: Option<i32>) -> bool {
        self.mailbox.probe(src, tag)
    }

    // ------------------------------------------------------------------
    // Collectives. Internal tags live in the negative space so they can
    // never collide with user point-to-point traffic.
    // ------------------------------------------------------------------

    fn next_coll_tag(&mut self) -> i32 {
        self.bump_coll_tag()
    }

    pub(crate) fn bump_coll_tag(&mut self) -> i32 {
        let tag = -1 - ((self.coll_seq % 0x3FFF_FFFF) as i32);
        self.coll_seq += 1;
        tag
    }

    /// Synchronises all ranks.
    pub fn barrier(&mut self) -> Result<(), MpiError> {
        let tag = self.next_coll_tag();
        let me = self.rank;
        if me == 0 {
            for src in 1..self.size() {
                let _ = self.mailbox.recv(Some(src), Some(tag))?;
            }
            for dst in 1..self.size() {
                self.send::<u8>(&[], dst, tag)?;
            }
        } else {
            self.send::<u8>(&[], 0, tag)?;
            let _ = self.mailbox.recv(Some(0), Some(tag))?;
        }
        Ok(())
    }

    /// Broadcasts `data` from `root` to every rank (in place).
    pub fn bcast<T: MpiData>(&mut self, data: &mut Vec<T>, root: usize) -> Result<(), MpiError> {
        self.check_rank(root)?;
        let tag = self.next_coll_tag();
        if self.rank == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send(data, dst, tag)?;
                }
            }
        } else {
            let (got, _) = self.recv::<T>(Some(root), Some(tag))?;
            *data = got;
        }
        Ok(())
    }

    /// Gathers every rank's buffer at `root` (rank-indexed).
    pub fn gather<T: MpiData>(
        &mut self,
        data: &[T],
        root: usize,
    ) -> Result<Option<Vec<Vec<T>>>, MpiError> {
        self.check_rank(root)?;
        let tag = self.next_coll_tag();
        if self.rank == root {
            let mut out: Vec<Vec<T>> = (0..self.size()).map(|_| Vec::new()).collect();
            out[root] = data.to_vec();
            for _ in 0..self.size() - 1 {
                let env = self.mailbox.recv(None, Some(tag))?;
                let got = decode::<T>(&env.payload).ok_or(MpiError::TypeMismatch {
                    expected: T::NAME,
                    bytes: env.payload.len(),
                })?;
                out[env.src] = got;
            }
            Ok(Some(out))
        } else {
            self.send(data, root, tag)?;
            Ok(None)
        }
    }

    /// Gathers variable-length blocks from all ranks and concatenates them
    /// in rank order on every rank (`MPI_Allgatherv` + flatten) — the form
    /// the Jacobi solver assembles its iterate with.
    pub fn allgather<T: MpiData>(&mut self, data: &[T]) -> Result<Vec<T>, MpiError> {
        let gathered = self.gather(data, 0)?;
        let mut flat: Vec<T> = match gathered {
            Some(blocks) => blocks.into_iter().flatten().collect(),
            None => Vec::new(),
        };
        self.bcast(&mut flat, 0)?;
        Ok(flat)
    }

    /// Element-wise sum reduction at `root`.
    pub fn reduce_sum<T: MpiData>(
        &mut self,
        data: &[T],
        root: usize,
    ) -> Result<Option<Vec<T>>, MpiError> {
        let gathered = self.gather(data, root)?;
        Ok(gathered.map(|blocks| {
            let mut acc = vec![];
            for block in blocks {
                if acc.is_empty() {
                    acc = block;
                } else {
                    for (a, b) in acc.iter_mut().zip(block) {
                        *a = a.add(b);
                    }
                }
            }
            acc
        }))
    }

    /// Element-wise sum on every rank (`MPI_Allreduce`) — CG's dot
    /// products.
    pub fn allreduce_sum<T: MpiData>(&mut self, data: &[T]) -> Result<Vec<T>, MpiError> {
        let mut acc = self.reduce_sum(data, 0)?.unwrap_or_default();
        self.bcast(&mut acc, 0)?;
        Ok(acc)
    }

    /// Scatters `chunks[i]` from `root` to rank `i`.
    pub fn scatter<T: MpiData>(
        &mut self,
        chunks: Option<&[Vec<T>]>,
        root: usize,
    ) -> Result<Vec<T>, MpiError> {
        self.check_rank(root)?;
        let tag = self.next_coll_tag();
        if self.rank == root {
            let chunks = chunks.expect("root must provide chunks");
            assert_eq!(chunks.len(), self.size(), "one chunk per rank");
            for (dst, chunk) in chunks.iter().enumerate() {
                if dst != root {
                    self.send(chunk, dst, tag)?;
                }
            }
            Ok(chunks[root].clone())
        } else {
            Ok(self.recv::<T>(Some(root), Some(tag))?.0)
        }
    }
}

/// One side of an inter-communicator: `rank()` is local, sends address the
/// *remote* group (MPI inter-communicator semantics).
pub struct InterComm {
    pub(crate) my_side: u64,
    pub(crate) rank: usize,
    pub(crate) local_size: usize,
    pub(crate) remote: Vec<Sender<Envelope>>,
    pub(crate) mailbox: Mailbox,
}

impl InterComm {
    pub(crate) fn new(
        registry: &Registry,
        my_side: u64,
        peer_side: u64,
        rank: usize,
        local_size: usize,
        remote_size: usize,
    ) -> Self {
        InterComm {
            my_side,
            rank,
            local_size,
            remote: registry.senders_for(peer_side, remote_size),
            mailbox: registry.take_mailbox(my_side, rank),
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn local_size(&self) -> usize {
        self.local_size
    }

    pub fn remote_size(&self) -> usize {
        self.remote.len()
    }

    /// Sends to rank `dst` *of the remote group*.
    pub fn send<T: MpiData>(&self, data: &[T], dst: usize, tag: i32) -> Result<(), MpiError> {
        if dst >= self.remote.len() {
            return Err(MpiError::InvalidRank {
                rank: dst,
                size: self.remote.len(),
            });
        }
        self.remote[dst]
            .send(Envelope {
                src: self.rank,
                tag,
                payload: encode(data),
            })
            .map_err(|_| MpiError::PeerGone {
                comm: self.my_side,
                rank: dst,
            })
    }

    /// Receives from the remote group.
    pub fn recv<T: MpiData>(
        &mut self,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> Result<(Vec<T>, Status), MpiError> {
        let env = self.mailbox.recv(src, tag)?;
        let data = decode::<T>(&env.payload).ok_or(MpiError::TypeMismatch {
            expected: T::NAME,
            bytes: env.payload.len(),
        })?;
        Ok((
            data,
            Status {
                source: env.src,
                tag: env.tag,
            },
        ))
    }

    /// Posts a non-blocking receive from the remote group.
    pub fn irecv(&self, src: Option<usize>, tag: Option<i32>) -> RecvRequest {
        RecvRequest { src, tag }
    }

    /// Completes a posted receive.
    pub fn wait<T: MpiData>(&mut self, req: RecvRequest) -> Result<(Vec<T>, Status), MpiError> {
        self.recv(req.src, req.tag)
    }
}
