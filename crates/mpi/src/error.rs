//! Error type for communication failures.

use std::fmt;

/// Communication failures. In this substrate they occur only when a peer
/// rank has exited (its mailbox is gone) — the moral equivalent of an MPI
/// abort — or when a fault injector deliberately kills a spawn.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MpiError {
    /// The destination rank's mailbox no longer exists.
    PeerGone { comm: u64, rank: usize },
    /// The payload could not be decoded as the requested datatype.
    TypeMismatch {
        expected: &'static str,
        bytes: usize,
    },
    /// A rank id outside the communicator was used.
    InvalidRank { rank: usize, size: usize },
    /// A [`crate::spawn::SpawnFaults`] injector killed the spawn before
    /// any child resources were allocated. Collective: every rank of the
    /// spawning communicator observes the same verdict, so the parent set
    /// stays internally consistent and can continue at its old size.
    SpawnInjected { comm: u64 },
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::PeerGone { comm, rank } => {
                write!(f, "peer rank {rank} of comm {comm} has exited")
            }
            MpiError::TypeMismatch { expected, bytes } => {
                write!(f, "cannot decode {bytes} bytes as {expected}")
            }
            MpiError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} outside communicator of size {size}")
            }
            MpiError::SpawnInjected { comm } => {
                write!(f, "injected spawn failure on comm {comm}")
            }
        }
    }
}

impl std::error::Error for MpiError {}
