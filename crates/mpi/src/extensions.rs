//! Communicator operations beyond the reconfiguration core:
//! `MPI_Comm_split`, `MPI_Sendrecv`, `MPI_Alltoallv`, and min/max
//! reductions. The paper's applications do not strictly need these, but
//! a usable MPI substrate does.

use std::sync::Arc;

use crate::comm::Comm;
use crate::datatype::MpiData;
use crate::error::MpiError;

impl Comm {
    /// Splits the communicator by `color`; ranks with equal colors form a
    /// new communicator, ordered by `(key, old rank)` (`MPI_Comm_split`).
    ///
    /// Collective: every rank must call. Returns the new communicator for
    /// this rank's color group.
    pub fn split(&mut self, color: u32, key: i64) -> Result<Comm, MpiError> {
        // Root gathers (color, key) pairs, computes the grouping, creates
        // endpoints for every new group, and scatters each rank's
        // (comm_id, new_rank, group_size).
        let mine = [color as u64, key as u64, self.rank() as u64];
        let gathered = self.gather(&mine, 0)?;
        let assignments: Option<Vec<Vec<u64>>> = if let Some(rows) = gathered {
            // Sort groups deterministically: by color, then (key, rank).
            let mut colors: Vec<u32> = rows.iter().map(|r| r[0] as u32).collect();
            colors.sort_unstable();
            colors.dedup();
            let mut assign: Vec<Vec<u64>> = vec![Vec::new(); self.size()];
            for &c in &colors {
                let mut members: Vec<(i64, usize)> = rows
                    .iter()
                    .filter(|r| r[0] as u32 == c)
                    .map(|r| (r[1] as i64, r[2] as usize))
                    .collect();
                members.sort();
                let comm_id = self.registry.alloc_comm_id();
                self.registry.create_endpoints(comm_id, members.len());
                for (new_rank, &(_, old_rank)) in members.iter().enumerate() {
                    assign[old_rank] = vec![comm_id, new_rank as u64, members.len() as u64];
                }
            }
            Some(assign)
        } else {
            None
        };
        let my = self.scatter(assignments.as_deref(), 0)?;
        let (comm_id, new_rank, group_size) = (my[0], my[1] as usize, my[2] as usize);
        Ok(Comm::new(
            Arc::clone(&self.registry),
            comm_id,
            new_rank,
            group_size,
            None,
        ))
    }

    /// Combined send+receive (`MPI_Sendrecv`): deadlock-free exchange
    /// because the substrate's sends are buffered.
    pub fn sendrecv<T: MpiData>(
        &mut self,
        send_data: &[T],
        dst: usize,
        send_tag: i32,
        src: usize,
        recv_tag: i32,
    ) -> Result<Vec<T>, MpiError> {
        self.send(send_data, dst, send_tag)?;
        Ok(self.recv::<T>(Some(src), Some(recv_tag))?.0)
    }

    /// Personalized all-to-all with variable block sizes
    /// (`MPI_Alltoallv`): `blocks[i]` goes to rank `i`; returns the blocks
    /// received from each rank, indexed by source.
    pub fn alltoallv<T: MpiData>(&mut self, blocks: &[Vec<T>]) -> Result<Vec<Vec<T>>, MpiError> {
        assert_eq!(blocks.len(), self.size(), "one block per destination");
        let tag = self.next_coll_tag_pub();
        for (dst, block) in blocks.iter().enumerate() {
            if dst != self.rank() {
                self.send(block, dst, tag)?;
            }
        }
        let mut out: Vec<Vec<T>> = (0..self.size()).map(|_| Vec::new()).collect();
        out[self.rank()] = blocks[self.rank()].clone();
        for _ in 0..self.size() - 1 {
            let (data, st) = self.recv::<T>(None, Some(tag))?;
            out[st.source] = data;
        }
        Ok(out)
    }

    /// Element-wise minimum on every rank.
    pub fn allreduce_min<T: MpiData + PartialOrd>(
        &mut self,
        data: &[T],
    ) -> Result<Vec<T>, MpiError> {
        self.allreduce_with(data, |a, b| if b < a { b } else { a })
    }

    /// Element-wise maximum on every rank.
    pub fn allreduce_max<T: MpiData + PartialOrd>(
        &mut self,
        data: &[T],
    ) -> Result<Vec<T>, MpiError> {
        self.allreduce_with(data, |a, b| if b > a { b } else { a })
    }

    /// Generic element-wise all-reduction with a caller-supplied combiner
    /// (associative; applied in rank order on rank 0, so results are
    /// deterministic).
    pub fn allreduce_with<T: MpiData>(
        &mut self,
        data: &[T],
        combine: impl Fn(T, T) -> T,
    ) -> Result<Vec<T>, MpiError> {
        let gathered = self.gather(data, 0)?;
        let mut acc: Vec<T> = match gathered {
            Some(blocks) => {
                let mut it = blocks.into_iter();
                let mut acc = it.next().unwrap_or_default();
                for block in it {
                    for (a, b) in acc.iter_mut().zip(block) {
                        *a = combine(*a, b);
                    }
                }
                acc
            }
            None => Vec::new(),
        };
        self.bcast(&mut acc, 0)?;
        Ok(acc)
    }

    pub(crate) fn next_coll_tag_pub(&mut self) -> i32 {
        // Reuse the private collective-tag counter through a crate-public
        // shim (extensions live in a sibling module).
        self.bump_coll_tag()
    }
}

#[cfg(test)]
mod tests {
    use crate::universe::Universe;

    #[test]
    fn split_into_even_and_odd() {
        let got = Universe::run(6, |mut comm| {
            let me = comm.rank();
            let mut sub = comm.split((me % 2) as u32, me as i64).unwrap();
            // Each group has 3 members; new ranks ordered by old rank.
            assert_eq!(sub.size(), 3);
            assert_eq!(sub.rank(), me / 2);
            // Group-local collective works.
            let sum = sub.allreduce_sum(&[me as u64]).unwrap()[0];
            (me % 2, sum)
        });
        for (parity, sum) in got {
            // evens: 0+2+4=6; odds: 1+3+5=9.
            assert_eq!(sum, if parity == 0 { 6 } else { 9 });
        }
    }

    #[test]
    fn split_respects_key_ordering() {
        let got = Universe::run(4, |mut comm| {
            let me = comm.rank();
            // Reverse the ordering via descending keys.
            let sub = comm.split(0, -(me as i64)).unwrap();
            (me, sub.rank())
        });
        // Old rank 3 has the highest key (-3 is lowest... descending):
        // keys are -0,-1,-2,-3 → sorted ascending: -3,-2,-1,-0 → old rank
        // 3 becomes new rank 0.
        assert_eq!(got, vec![(0, 3), (1, 2), (2, 1), (3, 0)]);
    }

    #[test]
    fn sendrecv_ring_exchange() {
        let got = Universe::run(4, |mut comm| {
            let me = comm.rank();
            let n = comm.size();
            let right = (me + 1) % n;
            let left = (me + n - 1) % n;
            let got = comm.sendrecv(&[me as u64], right, 7, left, 7).unwrap();
            got[0]
        });
        assert_eq!(got, vec![3, 0, 1, 2]);
    }

    #[test]
    fn alltoallv_transposes_blocks() {
        let got = Universe::run(3, |mut comm| {
            let me = comm.rank() as u64;
            // Rank r sends [r*10 + d] to destination d, with d+1 copies.
            let blocks: Vec<Vec<u64>> = (0..3).map(|d| vec![me * 10 + d as u64; d + 1]).collect();
            comm.alltoallv(&blocks).unwrap()
        });
        for (me, rows) in got.iter().enumerate() {
            for (src, block) in rows.iter().enumerate() {
                assert_eq!(block, &vec![src as u64 * 10 + me as u64; me + 1]);
            }
        }
    }

    #[test]
    fn min_max_reductions() {
        let got = Universe::run(4, |mut comm| {
            let me = comm.rank() as i64;
            let mins = comm.allreduce_min(&[me, -me]).unwrap();
            let maxs = comm.allreduce_max(&[me, -me]).unwrap();
            (mins, maxs)
        });
        for (mins, maxs) in got {
            assert_eq!(mins, vec![0, -3]);
            assert_eq!(maxs, vec![3, 0]);
        }
    }
}
