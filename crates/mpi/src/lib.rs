//! # dmr-mpi — a thread-backed MPI substrate
//!
//! The paper's framework sits on MPICH 3.2 and leans on one decidedly
//! non-trivial MPI feature: **dynamic process management**
//! (`MPI_Comm_spawn` + parent inter-communicators), which is how the
//! runtime materialises the post-reconfiguration process set. This crate
//! implements the needed MPI surface with *threads as ranks* and real
//! message passing (no shared mutable state between ranks):
//!
//! * [`universe::Universe`] — process-set launcher and lifetime manager
//!   (the `mpiexec` + PMI daemon of this world).
//! * [`comm::Comm`] — intra-communicators: typed point-to-point
//!   (send / recv / isend / irecv / waitall with tag and wildcard
//!   matching), and the collectives the paper's applications use
//!   (barrier, bcast, reduce, allreduce, gather, allgather, scatter).
//! * [`spawn`] — `Comm::spawn`: collectively launches a new rank set and
//!   returns an [`comm::InterComm`]; children find their parent via
//!   [`comm::Comm::parent`], exactly like `MPI_Comm_get_parent`
//!   (Listing 1 of the paper).
//! * [`datatype::MpiData`] — plain-old-data encoding for payloads.
//!
//! Determinism note: message *matching* follows MPI ordering rules
//! (non-overtaking per (src, dst, tag)); cross-rank arrival order is as
//! nondeterministic as real MPI, so tests assert on values, not order.

pub mod comm;
pub mod datatype;
pub mod error;
pub mod extensions;
pub mod mailbox;
pub mod registry;
pub mod spawn;
pub mod universe;

pub use comm::{Comm, InterComm, RecvRequest, Status, ANY_SOURCE, ANY_TAG};
pub use datatype::MpiData;
pub use error::MpiError;
pub use spawn::{SpawnEntry, SpawnFaults};
pub use universe::Universe;
