//! Per-rank message queues with MPI matching semantics.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

use crate::error::MpiError;

/// A message in flight.
#[derive(Clone, Debug)]
pub struct Envelope {
    pub src: usize,
    pub tag: i32,
    pub payload: Bytes,
}

/// Safety valve: a blocking receive that sees no matching traffic for this
/// long reports the peer as gone instead of deadlocking the test suite.
const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// The receiving end of one rank's (communicator-specific) queue.
///
/// Matching follows MPI rules: a receive with explicit `src`/`tag` takes
/// the *earliest* matching message; wildcard receives match anything.
/// Non-matching messages are stashed, preserving arrival order, so the
/// non-overtaking guarantee per (source, tag) holds.
pub struct Mailbox {
    rx: Receiver<Envelope>,
    stash: Vec<Envelope>,
    comm_id: u64,
    rank: usize,
}

/// Creates the channel pair backing one mailbox.
pub fn endpoint(comm_id: u64, rank: usize) -> (Sender<Envelope>, Mailbox) {
    let (tx, rx) = unbounded();
    (
        tx,
        Mailbox {
            rx,
            stash: Vec::new(),
            comm_id,
            rank,
        },
    )
}

impl Mailbox {
    fn matches(env: &Envelope, src: Option<usize>, tag: Option<i32>) -> bool {
        src.is_none_or(|s| env.src == s) && tag.is_none_or(|t| env.tag == t)
    }

    /// Blocking matched receive.
    pub fn recv(&mut self, src: Option<usize>, tag: Option<i32>) -> Result<Envelope, MpiError> {
        if let Some(pos) = self.stash.iter().position(|e| Self::matches(e, src, tag)) {
            return Ok(self.stash.remove(pos));
        }
        loop {
            match self.rx.recv_timeout(RECV_TIMEOUT) {
                Ok(env) => {
                    if Self::matches(&env, src, tag) {
                        return Ok(env);
                    }
                    self.stash.push(env);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    return Err(MpiError::PeerGone {
                        comm: self.comm_id,
                        rank: self.rank,
                    })
                }
            }
        }
    }

    /// Non-blocking probe: is a matching message available?
    pub fn probe(&mut self, src: Option<usize>, tag: Option<i32>) -> bool {
        while let Ok(env) = self.rx.try_recv() {
            self.stash.push(env);
        }
        self.stash.iter().any(|e| Self::matches(e, src, tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: i32, byte: u8) -> Envelope {
        Envelope {
            src,
            tag,
            payload: Bytes::from(vec![byte]),
        }
    }

    #[test]
    fn matched_receive_in_order() {
        let (tx, mut mb) = endpoint(0, 0);
        tx.send(env(1, 7, 10)).unwrap();
        tx.send(env(1, 7, 11)).unwrap();
        let a = mb.recv(Some(1), Some(7)).unwrap();
        let b = mb.recv(Some(1), Some(7)).unwrap();
        assert_eq!(a.payload[0], 10, "non-overtaking order");
        assert_eq!(b.payload[0], 11);
    }

    #[test]
    fn non_matching_messages_are_stashed() {
        let (tx, mut mb) = endpoint(0, 0);
        tx.send(env(2, 5, 20)).unwrap();
        tx.send(env(1, 7, 10)).unwrap();
        // Want (1,7): the (2,5) message must survive in the stash.
        let got = mb.recv(Some(1), Some(7)).unwrap();
        assert_eq!(got.payload[0], 10);
        let stashed = mb.recv(Some(2), Some(5)).unwrap();
        assert_eq!(stashed.payload[0], 20);
    }

    #[test]
    fn wildcards_match_anything() {
        let (tx, mut mb) = endpoint(0, 0);
        tx.send(env(3, 9, 30)).unwrap();
        let got = mb.recv(None, None).unwrap();
        assert_eq!((got.src, got.tag), (3, 9));
    }

    #[test]
    fn wildcard_source_with_fixed_tag() {
        let (tx, mut mb) = endpoint(0, 0);
        tx.send(env(4, 1, 1)).unwrap();
        tx.send(env(5, 2, 2)).unwrap();
        let got = mb.recv(None, Some(2)).unwrap();
        assert_eq!(got.src, 5);
    }

    #[test]
    fn probe_sees_pending() {
        let (tx, mut mb) = endpoint(0, 0);
        assert!(!mb.probe(None, None));
        tx.send(env(1, 1, 1)).unwrap();
        assert!(mb.probe(None, None));
        assert!(mb.probe(Some(1), Some(1)));
        assert!(!mb.probe(Some(2), None));
        // Probing must not consume.
        assert_eq!(mb.recv(None, None).unwrap().payload[0], 1);
    }

    #[test]
    fn disconnected_channel_reports_peer_gone() {
        let (tx, mut mb) = endpoint(7, 3);
        drop(tx);
        assert!(matches!(
            mb.recv(None, None),
            Err(MpiError::PeerGone { comm: 7, rank: 3 })
        ));
    }
}
