//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro <target> [seed]
//! repro --sweep [--smoke] [--threads N] [--seeds a,b,c]
//! repro --trace path.swf [--nodes N] [--check-prefix N]
//!       [--faults none|rare|harsh|trace:PATH] [--ckpt-interval S]
//! repro --hist [--jobs N] [--seed S]
//! repro --gen-swf N [--seed S]
//! repro --bench-json [--smoke] [--bench-out PATH] [--bench-label L]
//! targets: fig1 table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
//!          fig12 table2 all quick
//! ```
//! `quick` runs a reduced-scale version of everything (CI-friendly);
//! `all` runs the full paper-scale evaluation. `--sweep` runs the
//! scenario registry (workload × cluster × policy × mode) in parallel and
//! prints one CSV row per (scenario, seed) cell; `--smoke` swaps in the
//! CI-sized registry. `--trace` replays a Standard Workload Format file
//! through the streaming bounded-memory driver, rigid vs malleable, and
//! prints the summary comparison (including P50/P95/P99 columns) as CSV;
//! `--check-prefix N` additionally replays the first `N` jobs through
//! both telemetry paths and fails unless the summaries agree; `--faults`
//! injects a node-failure load into the replay (a preset, or a scripted
//! `trace:PATH` incident file of `<t_s> fail|repair <node>` lines) and
//! `--ckpt-interval S` gives killed jobs periodic images to restart
//! from instead of requeueing from scratch.
//! `--hist` prints ASCII histograms of the waiting / execution /
//! completion distributions. `--gen-swf` writes a synthetic SWF trace to
//! stdout for long-replay smoke tests. `--bench-json` runs the scheduler
//! hot-path throughput grid (arena vs indexed vs scan-reference) and
//! appends one run to the `BENCH_sched.json` perf-trajectory document,
//! keeping every prior run byte-identical (default path: repo root /
//! current directory; `--smoke` shrinks the grid for CI; `--bench-label`
//! names the run).

use dmr_bench::figures as f;
use dmr_bench::{hotpath, scenario, sweep, PRELIM_JOB_COUNTS, PRODUCTION_JOB_COUNTS, SEED};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--bench-json") {
        run_bench_json(&args);
        return;
    }
    if args.iter().any(|a| a == "--sweep") {
        run_sweep(&args);
        return;
    }
    if let Some(path) = flag_value(&args, "--trace") {
        let path = path.to_string();
        run_trace(&path, &args);
        return;
    }
    if args.iter().any(|a| a == "--hist") {
        let jobs = parsed_flag(&args, "--jobs").unwrap_or(50);
        let seed = parsed_flag(&args, "--seed").unwrap_or(SEED);
        println!("{}", f::hist_report(jobs, seed));
        return;
    }
    if let Some(n) = flag_value(&args, "--gen-swf") {
        let jobs: u32 = match n.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--gen-swf expects a positive job count, got `{n}`");
                std::process::exit(2);
            }
        };
        let seed = parsed_flag(&args, "--seed").unwrap_or(SEED);
        let spacing = parsed_flag::<f64>(&args, "--spacing");
        gen_swf(jobs, seed, spacing);
        return;
    }
    let target = args.first().map(String::as_str).unwrap_or("quick");
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(SEED);
    run(target, seed);
}

/// Parses `--flag v` into any `FromStr` type, exiting on malformed input.
fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    flag_value(args, flag).map(|v| match v.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("{flag} expects a number, got `{v}`");
            std::process::exit(2);
        }
    })
}

/// Value of `--flag v` or `--flag=v`, if present. A flag given without a
/// value (e.g. `--seeds` as the last argument) is an error, not a silent
/// fallback to the default.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let prefix = format!("{flag}=");
    args.iter().enumerate().find_map(|(i, a)| {
        if let Some(v) = a.strip_prefix(&prefix) {
            Some(v)
        } else if a == flag {
            match args.get(i + 1) {
                Some(v) => Some(v.as_str()),
                None => {
                    eprintln!("{flag} requires a value");
                    std::process::exit(2);
                }
            }
        } else {
            None
        }
    })
}

/// Parses `--faults none|rare|harsh|trace:PATH` into the preset load
/// plus an optional scripted trace (read and parsed from `PATH`, one
/// `<t_s> fail|repair <node>` event per line). Absent flag → the
/// zero-fault oracle default.
fn fault_flags(args: &[String]) -> (dmr_core::FaultLoad, Option<dmr_core::FaultTrace>) {
    use dmr_core::{FaultLoad, FaultTrace};
    match flag_value(args, "--faults") {
        None | Some("none") => (FaultLoad::None, None),
        Some("rare") => (FaultLoad::Rare, None),
        Some("harsh") => (FaultLoad::Harsh, None),
        Some(v) => {
            let Some(path) = v.strip_prefix("trace:") else {
                eprintln!("--faults expects none|rare|harsh|trace:PATH, got `{v}`");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read fault trace `{path}`: {e}");
                    std::process::exit(2);
                }
            };
            match FaultTrace::parse(&text) {
                Ok(trace) => (FaultLoad::None, Some(trace)),
                Err(e) => {
                    eprintln!("malformed fault trace `{path}`: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
}

/// Runs the scheduler hot-path grid and **appends** a run to the
/// `BENCH_sched.json` trajectory (prior runs stay byte-identical; a
/// legacy v1 snapshot is migrated verbatim as run 0). Exits non-zero if
/// the spliced document fails its schema gate or any acceptance bar
/// regresses: arena-vs-indexed headline speedup, the deep-backfill
/// conservative/EASY-1 ratio, or the incremental-scheduling cross-run
/// throughput gate against the `pr7-slotset-backfill` run.
fn run_bench_json(args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let path = flag_value(args, "--bench-out").unwrap_or("BENCH_sched.json");
    let existing = std::fs::read_to_string(path).ok();
    let label = match flag_value(args, "--bench-label") {
        Some(l) => l.to_string(),
        None => {
            let prior = existing.as_deref().map_or(0, hotpath::run_count);
            format!("run{}-{}", prior, if smoke { "smoke" } else { "full" })
        }
    };
    let mut run = hotpath::bench_run(smoke, &label, |cell| {
        eprintln!(
            "bench: n{:<5} q{:<6} {:<16} {:>12.0} events/s  ({:.0} jobs/s, peak queue {}, \
             passes {} run / {} elided)",
            cell.nodes,
            cell.queue_depth,
            format!(
                "{}/{}/{}{}{}",
                cell.mode,
                cell.backfill,
                cell.incremental,
                if cell.machine == "uniform" {
                    ""
                } else {
                    "/hetero3"
                },
                if cell.faults == "off" { "" } else { "/faulty" }
            ),
            cell.events_per_sec(),
            cell.jobs_per_sec(),
            cell.peak_queue_depth,
            cell.passes_run,
            cell.passes_elided,
        );
    });
    run = append_pareto_row(run, smoke);
    let doc = match hotpath::append_run(existing.as_deref(), &run) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot append to the {path} trajectory: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = hotpath::validate_bench_json(&doc) {
        eprintln!("BENCH_sched.json failed its schema gate: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(path, &doc) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    let speedup = hotpath::headline_speedup(&doc).unwrap_or(0.0);
    eprintln!(
        "appended run \"{label}\" to {path} ({} runs; headline speedup vs indexed: {speedup:.1}x)",
        hotpath::run_count(&doc)
    );
    // The bar was 5x when the indexed path re-derived everything per
    // pass. Pass elision is index-agnostic — both paths skip the same
    // provably-no-op passes — so the headline contrast compressed to the
    // per-pass walk advantage (~1.25x measured best-of-5). The gate is
    // now a regression guard: arena must stay strictly ahead of the
    // indexed path, with margin for scheduler-interference noise.
    if speedup < 1.1 {
        eprintln!("headline speedup {speedup:.1}x is below the 1.1x acceptance bar");
        std::process::exit(1);
    }
    // Deep-backfill gate: with the persistent plans and the dirty-window
    // walk, conservative planning of the whole blocked queue must stay
    // within ~0.85x of the EASY-1 events/s on the headline cell (the
    // pre-incremental bar was 0.5x).
    let ratio = hotpath::backfill_ratio(&doc).unwrap_or(0.0);
    eprintln!("backfill axis: conservative runs at {ratio:.2}x the easy1 events/s");
    if ratio < 0.85 {
        eprintln!("conservative/easy1 ratio {ratio:.2} is below the 0.85x bar");
        std::process::exit(1);
    }
    if let Some(rate) = hotpath::elision_rate(&doc) {
        eprintln!(
            "incremental axis: {:.1}% of headline passes elided",
            rate * 100.0
        );
    }
    // Cross-run gate: the incremental scheduler must beat the
    // pre-incremental trajectory run on the headline cell by ≥ 1.3x.
    // Skipped (with a note) when the trajectory lacks that run — e.g. a
    // fresh --bench-out document. Unlike the within-run ratios above,
    // the two sides of this gate were measured in different sessions —
    // interleaved repeats cannot spread interference across them — so
    // only full runs (300-round cells) enforce it; smoke runs report the
    // comparison without failing.
    let (nodes, depth) = (65_536, 100_000);
    let baseline = hotpath::run_cell_lookup(
        &doc,
        "pr7-slotset-backfill",
        nodes,
        depth,
        "arena",
        "easy1",
        "on",
    );
    let fresh = hotpath::run_cell_lookup(&doc, &label, nodes, depth, "arena", "easy1", "on");
    match (baseline, fresh) {
        (Some(base), Some(fresh)) if base.events_per_sec > 0.0 => {
            let gain = fresh.events_per_sec / base.events_per_sec;
            eprintln!(
                "incremental gate: easy1 arena {:.0} events/s vs pr7-slotset-backfill {:.0} \
                 ({gain:.2}x)",
                fresh.events_per_sec, base.events_per_sec
            );
            if gain < 1.3 && !smoke {
                eprintln!("easy1 arena gain {gain:.2}x vs pr7-slotset-backfill is below 1.3x");
                std::process::exit(1);
            }
        }
        _ => eprintln!(
            "incremental gate: no pr7-slotset-backfill headline cell in {path}; cross-run \
             comparison skipped"
        ),
    }
    // Machine-axis gate: per-class free sets and timelines must keep the
    // heterogeneous arena cell within 0.9x of its uniform twin. The two
    // sides run in the same interleaved best-of-N session, but smoke runs
    // only report — the 150-round smoke cells are short enough for a
    // single interference burst to swing a within-0.9 bar.
    if let Some(hetero) = hotpath::hetero_ratio(&doc) {
        eprintln!("machine axis: hetero3 arena runs at {hetero:.2}x the uniform events/s");
        if hetero < 0.9 && !smoke {
            eprintln!("hetero3/uniform ratio {hetero:.2} is below the 0.9x bar");
            std::process::exit(1);
        }
    }
    // Fault-axis gate: periodic kill-and-requeue plus repair churn must
    // keep the faulty arena cell within 0.7x of its calm twin. Same
    // smoke caveat as the machine axis: short smoke cells only report.
    if let Some(fault) = hotpath::fault_ratio(&doc) {
        eprintln!("fault axis: faulty arena runs at {fault:.2}x the calm events/s");
        if fault < 0.7 && !smoke {
            eprintln!("faulty/calm ratio {fault:.2} is below the 0.7x bar");
            std::process::exit(1);
        }
    }
}

/// Runs the heterogeneous grid cells (Algorithm 1 vs the energy-aware
/// policy on the three-class machine, same workload and seed) and
/// splices an energy-vs-makespan `pareto` row into the rendered run.
/// The simulated comparison is deterministic, so the dominance gate —
/// the energy-aware policy must spend strictly less energy than
/// Algorithm 1 on at least one heterogeneous scenario — holds in smoke
/// runs too, and failing it exits non-zero before anything is written.
fn append_pareto_row(run: String, smoke: bool) -> String {
    let cells = sweep::run_sweep(
        &scenario::hetero_axis(if smoke { 10 } else { 50 }),
        &[SEED],
        2,
    );
    let find = |policy: &str| {
        cells
            .iter()
            .find(|c| c.policy.starts_with(policy))
            .unwrap_or_else(|| panic!("hetero axis lacks the {policy} cell"))
    };
    let a1 = find("algorithm1");
    let ea = find("energy-aware");
    eprintln!(
        "pareto: algorithm1 {:.0} J / {:.1} s vs energy-aware {:.0} J / {:.1} s ({})",
        a1.summary.energy_to_solution_j,
        a1.summary.makespan_s,
        ea.summary.energy_to_solution_j,
        ea.summary.makespan_s,
        a1.scenario,
    );
    if ea.summary.energy_to_solution_j >= a1.summary.energy_to_solution_j {
        eprintln!(
            "energy-aware spent {:.0} J, not strictly below algorithm1's {:.0} J",
            ea.summary.energy_to_solution_j, a1.summary.energy_to_solution_j
        );
        std::process::exit(1);
    }
    let row = format!(
        ",\n  \"pareto\": {{\"scenario\": \"{}\", \
         \"algorithm1_energy_j\": {:.3}, \"algorithm1_makespan_s\": {:.3}, \
         \"energy_aware_energy_j\": {:.3}, \"energy_aware_makespan_s\": {:.3}, \
         \"energy_aware_dominates_energy\": true}}",
        a1.scenario,
        a1.summary.energy_to_solution_j,
        a1.summary.makespan_s,
        ea.summary.energy_to_solution_j,
        ea.summary.makespan_s,
    );
    match run.strip_suffix("\n}") {
        Some(body) => format!("{body}{row}\n}}"),
        None => run,
    }
}

fn run_sweep(args: &[String]) {
    let scenarios = if args.iter().any(|a| a == "--smoke") {
        scenario::smoke_registry()
    } else {
        scenario::registry()
    };
    let seeds: Vec<u64> = match flag_value(args, "--seeds") {
        Some(list) => {
            let parsed: Result<Vec<u64>, _> = list.split(',').map(str::parse).collect();
            match parsed {
                Ok(seeds) if !seeds.is_empty() => seeds,
                _ => {
                    eprintln!("--seeds expects a comma-separated list of integers, got `{list}`");
                    std::process::exit(2);
                }
            }
        }
        None => vec![SEED],
    };
    let threads = match flag_value(args, "--threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--threads expects a positive integer, got `{v}`");
                std::process::exit(2);
            }
        },
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let cells = sweep::run_sweep(&scenarios, &seeds, threads);
    print!("{}", sweep::csv_report(&cells));
    let past: u64 = cells.iter().map(|c| c.past_schedules).sum();
    if past > 0 {
        eprintln!("warning: {past} events were scheduled in the past and clamped");
        std::process::exit(1);
    }
}

/// Replays `path` (SWF) twice — rigid and malleable — through the
/// streaming bounded-memory driver and prints a two-row summary CSV.
/// With `--check-prefix N`, additionally replays the first `N` jobs under
/// both telemetry modes and exits non-zero unless the summaries are
/// bit-identical.
fn run_trace(path: &str, args: &[String]) {
    use dmr_core::ExperimentConfig;
    use dmr_core::{run_experiment_streaming, run_experiment_streaming_with_faults};
    use dmr_metrics::csv::write_summaries;
    use dmr_workload::SwfTrace;

    let nodes = match flag_value(args, "--nodes") {
        Some(v) => match v.parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--nodes expects a positive integer, got `{v}`");
                std::process::exit(2);
            }
        },
        None => 20,
    };
    let (load, fault_trace) = fault_flags(args);
    // Long traces replay through the O(1)-memory online telemetry path;
    // the summary (including the percentile columns) is bit-identical to
    // the buffered path, which `--check-prefix` verifies on demand.
    let mut cfg = ExperimentConfig::preliminary()
        .with_nodes(nodes)
        .with_faults(load)
        .online();
    if let Some(s) = parsed_flag::<f64>(args, "--ckpt-interval") {
        if s <= 0.0 {
            eprintln!("--ckpt-interval expects a positive number of seconds, got `{s}`");
            std::process::exit(2);
        }
        cfg = cfg.with_ckpt_interval(s);
    }
    // A trace replay has no randomness: two opens of the same file are
    // the same workload, so fixed vs flexible is a fair comparison.
    let mut results = Vec::new();
    for (label, cfg) in [("swf-fixed", cfg.as_fixed()), ("swf-flexible", cfg)] {
        let mut trace = match SwfTrace::open(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot open trace `{path}`: {e}");
                std::process::exit(2);
            }
        };
        let result = match fault_trace.clone() {
            Some(script) => run_experiment_streaming_with_faults(&cfg, &mut trace, script),
            None => run_experiment_streaming(&cfg, &mut trace),
        };
        if result.summary.jobs == 0 {
            eprintln!("trace `{path}` contains no replayable jobs");
            std::process::exit(1);
        }
        eprintln!(
            "{label}: {} jobs, {} lines skipped, makespan {:.1} s, p99 completion {:.1} s",
            result.summary.jobs,
            trace.skipped_lines(),
            result.summary.makespan_s,
            result.summary.completion_q.p99_s
        );
        if !load.is_none() || fault_trace.is_some() {
            eprintln!(
                "{label}: {} node failures, {} requeues, {:.1} s lost work, \
                 goodput {:.4}, restart p95 {:.1} s",
                result.summary.failures,
                result.summary.requeues,
                result.summary.lost_work_s,
                result.summary.goodput_ratio,
                result.summary.restart_p95_s,
            );
        }
        results.push((label, result));
    }
    let rows: Vec<(&str, &dmr_metrics::WorkloadSummary)> = results
        .iter()
        .map(|(label, r)| (*label, &r.summary))
        .collect();
    let mut out = Vec::new();
    write_summaries(&mut out, &rows).expect("writing to memory cannot fail");
    print!("{}", String::from_utf8(out).expect("CSV is UTF-8"));
    if let Some(prefix) = parsed_flag::<u32>(args, "--check-prefix") {
        check_prefix(path, nodes, prefix);
    }
}

/// Replays the first `prefix` jobs of `path` through the streaming
/// (online) and buffered (full) telemetry paths and asserts the
/// summaries agree **bit-for-bit** — every f64 compared by raw bits, not
/// through rounded CSV formatting, so even sub-rounding divergence fails
/// the gate.
fn check_prefix(path: &str, nodes: u32, prefix: u32) {
    use dmr_core::{run_experiment_streaming, ExperimentConfig};
    use dmr_metrics::WorkloadSummary;
    use dmr_workload::{Capped, SwfTrace};

    // Every f64 of the summary as raw bits (quantiles included), plus
    // the integer counters — byte-equal iff the summaries are.
    fn fingerprint(s: &WorkloadSummary) -> String {
        format!(
            "{:016x} {:016x} {:016x} {:016x} {:016x} \
             {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} \
             jobs={} reconf={}",
            s.makespan_s.to_bits(),
            s.utilization.to_bits(),
            s.avg_waiting_s.to_bits(),
            s.avg_execution_s.to_bits(),
            s.avg_completion_s.to_bits(),
            s.waiting_q.p50_s.to_bits(),
            s.waiting_q.p95_s.to_bits(),
            s.waiting_q.p99_s.to_bits(),
            s.execution_q.p50_s.to_bits(),
            s.execution_q.p95_s.to_bits(),
            s.execution_q.p99_s.to_bits(),
            s.completion_q.p50_s.to_bits(),
            s.completion_q.p95_s.to_bits(),
            s.completion_q.p99_s.to_bits(),
            s.jobs,
            s.reconfigurations,
        )
    }

    let base = ExperimentConfig::preliminary().with_nodes(nodes);
    let mut prints = Vec::new();
    for cfg in [base.online(), base] {
        let trace = match SwfTrace::open(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot reopen trace `{path}`: {e}");
                std::process::exit(2);
            }
        };
        let mut capped = Capped::new(trace, prefix);
        let result = run_experiment_streaming(&cfg, &mut capped);
        prints.push(fingerprint(&result.summary));
    }
    if prints[0] == prints[1] {
        eprintln!(
            "prefix check ({prefix} jobs): streaming summary matches buffered path bit-for-bit"
        );
    } else {
        eprintln!(
            "prefix check FAILED ({prefix} jobs):\n  online:   {}\n  buffered: {}",
            prints[0], prints[1]
        );
        std::process::exit(1);
    }
}

/// Writes a synthetic Standard Workload Format trace to stdout: `jobs`
/// records drawn from the Feitelson preliminary model, submit-sorted,
/// one line per job in the 18-field SWF v2.2 layout (unused fields -1).
///
/// The model's arrival process is tuned for testbed-sized workloads;
/// replayed at tens of thousands of jobs it buries the simulated cluster
/// under an ever-growing backlog (a scheduler stress test, quadratic in
/// queue depth). `spacing` overrides arrivals with a fixed inter-submit
/// gap in seconds, producing a steady-state trace whose replay cost is
/// linear in job count — what the long-trace streaming smoke wants.
fn gen_swf(jobs: u32, seed: u64, spacing: Option<f64>) {
    use dmr_core::WorkloadKind;
    use std::io::Write;

    let mut source = WorkloadKind::FsPreliminary.build(jobs, seed);
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    writeln!(out, "; Synthetic SWF trace: {jobs} jobs, seed {seed}").expect("stdout");
    writeln!(
        out,
        "; Generated by `repro --gen-swf` from the Feitelson FS model"
    )
    .expect("stdout");
    let mut id = 0u64;
    while let Some(job) = source.next_job() {
        let submit = match spacing {
            Some(s) => id as f64 * s,
            None => job.arrival_s,
        };
        id += 1;
        let runtime = job.steps as f64 * job.step_s;
        // Fields: job, submit, wait, run, alloc procs, cpu, mem,
        // req procs, req time, req mem, status, uid, gid, app, queue,
        // partition, prev job, think time.
        writeln!(
            out,
            "{} {:.0} -1 {:.0} {} -1 -1 {} {:.0} -1 1 -1 -1 -1 -1 -1 -1 -1",
            id,
            submit,
            runtime.max(1.0),
            job.submit_procs,
            job.submit_procs,
            job.walltime_s.max(1.0),
        )
        .expect("stdout");
    }
}

fn run(target: &str, seed: u64) {
    match target {
        "fig1" => println!("{}", f::fig1_report()),
        "table1" => println!("{}", f::table1_report()),
        "fig3" => println!("{}", f::fig3_report(&PRELIM_JOB_COUNTS, seed)),
        "fig4" => println!("{}", f::fig4(seed).render(72)),
        "fig5" => println!("{}", f::fig5(seed).render(72)),
        "fig6" => println!("{}", f::fig6(seed).render(72)),
        "fig7" => println!("{}", f::fig7_report(&PRELIM_JOB_COUNTS, seed)),
        "fig8" => println!("{}", f::fig8_report(100, seed)),
        "fig9" => println!("{}", f::fig9_report(&[10, 25, 50, 100], seed)),
        "fig10" | "fig11" | "table2" => {
            let pairs = f::production_summaries(&PRODUCTION_JOB_COUNTS, seed);
            match target {
                "fig10" => println!("{}", f::fig10_report(&pairs)),
                "fig11" => println!("{}", f::fig11_report(&pairs)),
                _ => println!("{}", f::table2_report(&pairs)),
            }
        }
        "fig12" => println!("{}", f::fig12(seed).render(72)),
        "ablations" => println!("{}", f::ablations_report(50, seed)),
        "all" => {
            println!("{}", f::fig1_report());
            println!("{}", f::table1_report());
            println!("{}", f::fig3_report(&PRELIM_JOB_COUNTS, seed));
            println!("{}", f::fig4(seed).render(72));
            println!("{}", f::fig5(seed).render(72));
            println!("{}", f::fig6(seed).render(72));
            println!("{}", f::fig7_report(&PRELIM_JOB_COUNTS, seed));
            println!("{}", f::fig8_report(100, seed));
            println!("{}", f::fig9_report(&[10, 25, 50, 100], seed));
            let pairs = f::production_summaries(&PRODUCTION_JOB_COUNTS, seed);
            println!("{}", f::fig10_report(&pairs));
            println!("{}", f::fig11_report(&pairs));
            println!("{}", f::table2_report(&pairs));
            println!("{}", f::fig12(seed).render(72));
            println!("{}", f::ablations_report(50, seed));
        }
        "quick" => {
            println!("{}", f::fig1_report());
            println!("{}", f::table1_report());
            println!("{}", f::fig3_report(&[10, 25, 50], seed));
            println!("{}", f::fig8_report(50, seed));
            let pairs = f::production_summaries(&[50], seed);
            println!("{}", f::fig10_report(&pairs));
            println!("{}", f::table2_report(&pairs));
        }
        other => {
            eprintln!("unknown target `{other}`");
            eprintln!(
                "targets: fig1 table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 \
                 fig10 fig11 fig12 table2 all quick\n\
                 or: --sweep [--smoke] [--threads N] [--seeds a,b,c]\n\
                 or: --trace path.swf [--nodes N] [--check-prefix N]\n\
                 \x20            [--faults none|rare|harsh|trace:PATH] [--ckpt-interval S]\n\
                 or: --hist [--jobs N] [--seed S]\n\
                 or: --gen-swf N [--seed S]\n\
                 or: --bench-json [--smoke] [--bench-out PATH] [--bench-label L]"
            );
            std::process::exit(2);
        }
    }
}
