//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro <target> [seed]
//! repro --sweep [--smoke] [--threads N] [--seeds a,b,c]
//! repro --trace path.swf [--nodes N]
//! targets: fig1 table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
//!          fig12 table2 all quick
//! ```
//! `quick` runs a reduced-scale version of everything (CI-friendly);
//! `all` runs the full paper-scale evaluation. `--sweep` runs the
//! scenario registry (workload × cluster × policy × mode) in parallel and
//! prints one CSV row per (scenario, seed) cell; `--smoke` swaps in the
//! CI-sized registry. `--trace` replays a Standard Workload Format file
//! through the streaming driver, rigid vs malleable, and prints the
//! summary comparison as CSV.

use dmr_bench::figures as f;
use dmr_bench::{scenario, sweep, PRELIM_JOB_COUNTS, PRODUCTION_JOB_COUNTS, SEED};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--sweep") {
        run_sweep(&args);
        return;
    }
    if let Some(path) = flag_value(&args, "--trace") {
        let path = path.to_string();
        run_trace(&path, &args);
        return;
    }
    let target = args.first().map(String::as_str).unwrap_or("quick");
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(SEED);
    run(target, seed);
}

/// Value of `--flag v` or `--flag=v`, if present. A flag given without a
/// value (e.g. `--seeds` as the last argument) is an error, not a silent
/// fallback to the default.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let prefix = format!("{flag}=");
    args.iter().enumerate().find_map(|(i, a)| {
        if let Some(v) = a.strip_prefix(&prefix) {
            Some(v)
        } else if a == flag {
            match args.get(i + 1) {
                Some(v) => Some(v.as_str()),
                None => {
                    eprintln!("{flag} requires a value");
                    std::process::exit(2);
                }
            }
        } else {
            None
        }
    })
}

fn run_sweep(args: &[String]) {
    let scenarios = if args.iter().any(|a| a == "--smoke") {
        scenario::smoke_registry()
    } else {
        scenario::registry()
    };
    let seeds: Vec<u64> = match flag_value(args, "--seeds") {
        Some(list) => {
            let parsed: Result<Vec<u64>, _> = list.split(',').map(str::parse).collect();
            match parsed {
                Ok(seeds) if !seeds.is_empty() => seeds,
                _ => {
                    eprintln!("--seeds expects a comma-separated list of integers, got `{list}`");
                    std::process::exit(2);
                }
            }
        }
        None => vec![SEED],
    };
    let threads = match flag_value(args, "--threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--threads expects a positive integer, got `{v}`");
                std::process::exit(2);
            }
        },
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let cells = sweep::run_sweep(&scenarios, &seeds, threads);
    print!("{}", sweep::csv_report(&cells));
    let past: u64 = cells.iter().map(|c| c.past_schedules).sum();
    if past > 0 {
        eprintln!("warning: {past} events were scheduled in the past and clamped");
        std::process::exit(1);
    }
}

/// Replays `path` (SWF) twice — rigid and malleable — through the
/// streaming driver and prints a two-row summary CSV.
fn run_trace(path: &str, args: &[String]) {
    use dmr_core::{run_experiment_streaming, ExperimentConfig};
    use dmr_metrics::csv::write_summaries;
    use dmr_workload::SwfTrace;

    let nodes = match flag_value(args, "--nodes") {
        Some(v) => match v.parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--nodes expects a positive integer, got `{v}`");
                std::process::exit(2);
            }
        },
        None => 20,
    };
    let cfg = ExperimentConfig::preliminary().with_nodes(nodes);
    // A trace replay has no randomness: two opens of the same file are
    // the same workload, so fixed vs flexible is a fair comparison.
    let mut results = Vec::new();
    for (label, cfg) in [("swf-fixed", cfg.as_fixed()), ("swf-flexible", cfg)] {
        let mut trace = match SwfTrace::open(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot open trace `{path}`: {e}");
                std::process::exit(2);
            }
        };
        let result = run_experiment_streaming(&cfg, &mut trace);
        if result.summary.jobs == 0 {
            eprintln!("trace `{path}` contains no replayable jobs");
            std::process::exit(1);
        }
        eprintln!(
            "{label}: {} jobs, {} lines skipped, makespan {:.1} s",
            result.summary.jobs,
            trace.skipped_lines(),
            result.summary.makespan_s
        );
        results.push((label, result));
    }
    let rows: Vec<(&str, &dmr_metrics::WorkloadSummary)> = results
        .iter()
        .map(|(label, r)| (*label, &r.summary))
        .collect();
    let mut out = Vec::new();
    write_summaries(&mut out, &rows).expect("writing to memory cannot fail");
    print!("{}", String::from_utf8(out).expect("CSV is UTF-8"));
}

fn run(target: &str, seed: u64) {
    match target {
        "fig1" => println!("{}", f::fig1_report()),
        "table1" => println!("{}", f::table1_report()),
        "fig3" => println!("{}", f::fig3_report(&PRELIM_JOB_COUNTS, seed)),
        "fig4" => println!("{}", f::fig4(seed).render(72)),
        "fig5" => println!("{}", f::fig5(seed).render(72)),
        "fig6" => println!("{}", f::fig6(seed).render(72)),
        "fig7" => println!("{}", f::fig7_report(&PRELIM_JOB_COUNTS, seed)),
        "fig8" => println!("{}", f::fig8_report(100, seed)),
        "fig9" => println!("{}", f::fig9_report(&[10, 25, 50, 100], seed)),
        "fig10" | "fig11" | "table2" => {
            let pairs = f::production_summaries(&PRODUCTION_JOB_COUNTS, seed);
            match target {
                "fig10" => println!("{}", f::fig10_report(&pairs)),
                "fig11" => println!("{}", f::fig11_report(&pairs)),
                _ => println!("{}", f::table2_report(&pairs)),
            }
        }
        "fig12" => println!("{}", f::fig12(seed).render(72)),
        "ablations" => println!("{}", f::ablations_report(50, seed)),
        "all" => {
            println!("{}", f::fig1_report());
            println!("{}", f::table1_report());
            println!("{}", f::fig3_report(&PRELIM_JOB_COUNTS, seed));
            println!("{}", f::fig4(seed).render(72));
            println!("{}", f::fig5(seed).render(72));
            println!("{}", f::fig6(seed).render(72));
            println!("{}", f::fig7_report(&PRELIM_JOB_COUNTS, seed));
            println!("{}", f::fig8_report(100, seed));
            println!("{}", f::fig9_report(&[10, 25, 50, 100], seed));
            let pairs = f::production_summaries(&PRODUCTION_JOB_COUNTS, seed);
            println!("{}", f::fig10_report(&pairs));
            println!("{}", f::fig11_report(&pairs));
            println!("{}", f::table2_report(&pairs));
            println!("{}", f::fig12(seed).render(72));
            println!("{}", f::ablations_report(50, seed));
        }
        "quick" => {
            println!("{}", f::fig1_report());
            println!("{}", f::table1_report());
            println!("{}", f::fig3_report(&[10, 25, 50], seed));
            println!("{}", f::fig8_report(50, seed));
            let pairs = f::production_summaries(&[50], seed);
            println!("{}", f::fig10_report(&pairs));
            println!("{}", f::table2_report(&pairs));
        }
        other => {
            eprintln!("unknown target `{other}`");
            eprintln!(
                "targets: fig1 table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 \
                 fig10 fig11 fig12 table2 all quick\n\
                 or: --sweep [--smoke] [--threads N] [--seeds a,b,c]\n\
                 or: --trace path.swf [--nodes N]"
            );
            std::process::exit(2);
        }
    }
}
