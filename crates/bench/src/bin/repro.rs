//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro <target> [seed]
//! targets: fig1 table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
//!          fig12 table2 all quick
//! ```
//! `quick` runs a reduced-scale version of everything (CI-friendly);
//! `all` runs the full paper-scale evaluation.

use dmr_bench::figures as f;
use dmr_bench::{PRELIM_JOB_COUNTS, PRODUCTION_JOB_COUNTS, SEED};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = args.first().map(String::as_str).unwrap_or("quick");
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(SEED);
    run(target, seed);
}

fn run(target: &str, seed: u64) {
    match target {
        "fig1" => println!("{}", f::fig1_report()),
        "table1" => println!("{}", f::table1_report()),
        "fig3" => println!("{}", f::fig3_report(&PRELIM_JOB_COUNTS, seed)),
        "fig4" => println!("{}", f::fig4(seed).render(72)),
        "fig5" => println!("{}", f::fig5(seed).render(72)),
        "fig6" => println!("{}", f::fig6(seed).render(72)),
        "fig7" => println!("{}", f::fig7_report(&PRELIM_JOB_COUNTS, seed)),
        "fig8" => println!("{}", f::fig8_report(100, seed)),
        "fig9" => println!("{}", f::fig9_report(&[10, 25, 50, 100], seed)),
        "fig10" | "fig11" | "table2" => {
            let pairs = f::production_summaries(&PRODUCTION_JOB_COUNTS, seed);
            match target {
                "fig10" => println!("{}", f::fig10_report(&pairs)),
                "fig11" => println!("{}", f::fig11_report(&pairs)),
                _ => println!("{}", f::table2_report(&pairs)),
            }
        }
        "fig12" => println!("{}", f::fig12(seed).render(72)),
        "ablations" => println!("{}", f::ablations_report(50, seed)),
        "all" => {
            println!("{}", f::fig1_report());
            println!("{}", f::table1_report());
            println!("{}", f::fig3_report(&PRELIM_JOB_COUNTS, seed));
            println!("{}", f::fig4(seed).render(72));
            println!("{}", f::fig5(seed).render(72));
            println!("{}", f::fig6(seed).render(72));
            println!("{}", f::fig7_report(&PRELIM_JOB_COUNTS, seed));
            println!("{}", f::fig8_report(100, seed));
            println!("{}", f::fig9_report(&[10, 25, 50, 100], seed));
            let pairs = f::production_summaries(&PRODUCTION_JOB_COUNTS, seed);
            println!("{}", f::fig10_report(&pairs));
            println!("{}", f::fig11_report(&pairs));
            println!("{}", f::table2_report(&pairs));
            println!("{}", f::fig12(seed).render(72));
            println!("{}", f::ablations_report(50, seed));
        }
        "quick" => {
            println!("{}", f::fig1_report());
            println!("{}", f::table1_report());
            println!("{}", f::fig3_report(&[10, 25, 50], seed));
            println!("{}", f::fig8_report(50, seed));
            let pairs = f::production_summaries(&[50], seed);
            println!("{}", f::fig10_report(&pairs));
            println!("{}", f::table2_report(&pairs));
        }
        other => {
            eprintln!("unknown target `{other}`");
            eprintln!(
                "targets: fig1 table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 \
                 fig10 fig11 fig12 table2 all quick"
            );
            std::process::exit(2);
        }
    }
}
