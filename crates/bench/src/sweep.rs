//! Parallel scenario-sweep runner.
//!
//! Fans `run_experiment` over the (scenario × seed) grid across OS
//! threads. Work items are claimed from an atomic cursor and results are
//! written into pre-indexed slots, so the output order — and therefore the
//! CSV byte stream — is a pure function of the grid, never of thread
//! scheduling. Each worker builds its own driver; nothing is shared but
//! the cursor and the result slots.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dmr_core::run_experiment_streaming;
use dmr_metrics::csv::escape_field;
use dmr_metrics::WorkloadSummary;

use crate::scenario::Scenario;

/// One (scenario, seed) cell's outcome.
#[derive(Clone, Debug)]
pub struct SweepCell {
    pub scenario: String,
    /// Workload-source family the scenario drew from.
    pub workload: &'static str,
    pub policy: String,
    pub mode: &'static str,
    /// Backfill selection the cell ran under (off / easy1 / easy8 /
    /// conservative).
    pub backfill: &'static str,
    /// Machine-class composition the cluster was built from (uniform /
    /// single-class / hetero3).
    pub machine_mix: &'static str,
    /// Fault load the cell ran under (none / rare / harsh).
    pub faults: &'static str,
    pub seed: u64,
    pub nodes: u32,
    pub summary: WorkloadSummary,
    pub events: u64,
    pub past_schedules: u64,
}

impl SweepCell {
    /// The CSV header matching [`SweepCell::csv_row`].
    pub const CSV_HEADER: &'static str =
        "scenario,workload,policy,mode,backfill,seed,nodes,jobs,makespan_s,\
         utilization,avg_wait_s,avg_exec_s,avg_completion_s,\
         p50_wait_s,p95_wait_s,p99_wait_s,p50_exec_s,p95_exec_s,p99_exec_s,\
         p50_compl_s,p95_compl_s,p99_compl_s,reconfigurations,events,past_schedules,\
         machine_mix,energy_j,avg_watts,\
         faults,failures,requeues,lost_work_s,goodput_ratio,restart_p95_s";

    /// One CSV row. Fixed-precision formatting keeps the byte stream
    /// deterministic across runs and thread counts; free-form labels are
    /// RFC 4180-escaped so a comma in a name can never shift columns.
    /// The percentile columns come from the streaming histograms and are
    /// deterministic like everything else (bins are a pure function of
    /// the recorded durations).
    pub fn csv_row(&self) -> String {
        let s = &self.summary;
        format!(
            "{},{},{},{},{},{},{},{},{:.3},{:.6},{:.3},{:.3},{:.3},\
             {:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{},\
             {},{:.3},{:.3},{},{},{},{:.3},{:.6},{:.3}",
            escape_field(&self.scenario),
            escape_field(self.workload),
            escape_field(&self.policy),
            self.mode,
            self.backfill,
            self.seed,
            self.nodes,
            s.jobs,
            s.makespan_s,
            s.utilization,
            s.avg_waiting_s,
            s.avg_execution_s,
            s.avg_completion_s,
            s.waiting_q.p50_s,
            s.waiting_q.p95_s,
            s.waiting_q.p99_s,
            s.execution_q.p50_s,
            s.execution_q.p95_s,
            s.execution_q.p99_s,
            s.completion_q.p50_s,
            s.completion_q.p95_s,
            s.completion_q.p99_s,
            s.reconfigurations,
            self.events,
            self.past_schedules,
            self.machine_mix,
            s.energy_to_solution_j,
            s.avg_watts,
            self.faults,
            s.failures,
            s.requeues,
            s.lost_work_s,
            s.goodput_ratio,
            s.restart_p95_s,
        )
    }
}

/// Runs every (scenario, seed) cell on up to `threads` worker threads and
/// returns the cells in grid order (scenario-major, then seed), regardless
/// of which thread computed which cell.
pub fn run_sweep(scenarios: &[Scenario], seeds: &[u64], threads: usize) -> Vec<SweepCell> {
    let work: Vec<(&Scenario, u64)> = scenarios
        .iter()
        .flat_map(|sc| seeds.iter().map(move |&seed| (sc, seed)))
        .collect();
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SweepCell>>> = work.iter().map(|_| Mutex::new(None)).collect();
    let workers = threads.max(1).min(work.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(sc, seed)) = work.get(i) else {
                    break;
                };
                let cell = run_cell(sc, seed);
                *slots[i].lock().expect("sweep slot poisoned") = Some(cell);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("every work item was claimed and completed")
        })
        .collect()
}

fn run_cell(sc: &Scenario, seed: u64) -> SweepCell {
    let mut source = sc.source(seed);
    let result = run_experiment_streaming(&sc.config(), source.as_mut());
    SweepCell {
        scenario: sc.name(),
        workload: sc.workload.name(),
        policy: sc.policy.label(),
        mode: match sc.mode {
            dmr_core::ScheduleMode::Synchronous => "sync",
            dmr_core::ScheduleMode::Asynchronous => "async",
        },
        backfill: sc.backfill.name(),
        machine_mix: sc.mix.name(),
        faults: sc.faults.name(),
        seed,
        nodes: sc.nodes,
        summary: result.summary,
        events: result.events,
        past_schedules: result.past_schedules,
    }
}

/// Renders cells as one CSV document, one row per (scenario, seed).
pub fn csv_report(cells: &[SweepCell]) -> String {
    let mut out = String::from(SweepCell::CSV_HEADER);
    out.push('\n');
    for cell in cells {
        out.push_str(&cell.csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::smoke_registry;

    #[test]
    fn sweep_output_is_identical_across_thread_counts() {
        // The acceptance bar: byte-identical CSV regardless of how the
        // work was scheduled. 1 thread vs an over-subscribed pool.
        let scenarios = smoke_registry();
        let seeds = [1u64, 20170814];
        let serial = csv_report(&run_sweep(&scenarios, &seeds, 1));
        let parallel = csv_report(&run_sweep(&scenarios, &seeds, 8));
        assert_eq!(serial, parallel);
        let wide = csv_report(&run_sweep(&scenarios, &seeds, 3));
        assert_eq!(serial, wide);
    }

    #[test]
    fn sweep_emits_one_row_per_cell_in_grid_order() {
        let scenarios = smoke_registry();
        let seeds = [5u64, 6];
        let cells = run_sweep(&scenarios, &seeds, 4);
        assert_eq!(cells.len(), scenarios.len() * seeds.len());
        for (i, cell) in cells.iter().enumerate() {
            let sc = &scenarios[i / seeds.len()];
            assert_eq!(cell.scenario, sc.name());
            assert_eq!(cell.workload, sc.workload.name());
            assert_eq!(cell.seed, seeds[i % seeds.len()]);
            // Synthetic sources emit exactly `jobs`; trace replays at most.
            assert!(cell.summary.jobs as u32 <= sc.jobs);
            assert!(cell.summary.jobs > 0);
        }
    }

    #[test]
    fn sweep_cells_report_no_past_scheduling() {
        let scenarios = smoke_registry();
        let cells = run_sweep(&scenarios, &[3], 2);
        for cell in &cells {
            assert_eq!(
                cell.past_schedules, 0,
                "{} scheduled in the past",
                cell.scenario
            );
        }
    }

    #[test]
    fn csv_has_header_and_stable_shape() {
        let cells = run_sweep(&smoke_registry()[..1], &[1], 1);
        let csv = csv_report(&cells);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("scenario,workload,policy,mode,backfill,seed,"));
        let row = lines.next().unwrap();
        assert_eq!(row.split(',').count(), header.split(',').count());
    }

    #[test]
    fn sweep_reports_machine_mix_and_energy() {
        assert!(SweepCell::CSV_HEADER.contains("machine_mix,energy_j,avg_watts"));
        let cells = run_sweep(&crate::scenario::hetero_axis(10), &[1], 2);
        assert_eq!(cells.len(), 2);
        for cell in &cells {
            assert_eq!(cell.machine_mix, "hetero3");
            assert!(
                cell.summary.energy_to_solution_j > 0.0,
                "{} metered no energy",
                cell.scenario
            );
            assert!(cell.summary.avg_watts > 0.0);
            assert!(!cell.summary.class_utilization.is_empty());
        }
    }

    #[test]
    fn energy_aware_dominates_algorithm1_on_energy() {
        // The Pareto gate `repro --bench-json` enforces: on the
        // heterogeneous cells the energy-aware policy (idle power-down +
        // shrink-for-blocked) must spend strictly less energy than
        // Algorithm 1 on the same workload and seed.
        let cells = run_sweep(&crate::scenario::hetero_axis(10), &[crate::SEED], 2);
        let energy = |policy: &str| {
            cells
                .iter()
                .find(|c| c.policy.starts_with(policy))
                .expect("hetero cell present")
                .summary
                .energy_to_solution_j
        };
        assert!(
            energy("energy-aware") < energy("algorithm1"),
            "energy-aware {} J vs algorithm1 {} J",
            energy("energy-aware"),
            energy("algorithm1")
        );
    }

    #[test]
    fn fault_cells_report_failures_and_goodput() {
        assert!(SweepCell::CSV_HEADER
            .ends_with("faults,failures,requeues,lost_work_s,goodput_ratio,restart_p95_s"));
        let cells = run_sweep(&crate::scenario::fault_axis(10), &[crate::SEED], 2);
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            assert_ne!(cell.faults, "none");
            // Every submitted job still completes — failures requeue,
            // they don't drop work.
            assert_eq!(cell.summary.jobs, 10, "{} lost jobs", cell.scenario);
            assert!(cell.summary.goodput_ratio > 0.0 && cell.summary.goodput_ratio <= 1.0);
            // Only busy-node failures requeue, so requeues never exceed
            // failures.
            assert!(cell.summary.requeues <= cell.summary.failures);
        }
        // The harsh load actually bites on at least one cell.
        assert!(
            cells
                .iter()
                .filter(|c| c.faults == "harsh")
                .any(|c| c.summary.failures > 0),
            "harsh cells saw no failures"
        );
        // Fault-free cells keep the identity goodput.
        let calm = run_sweep(&smoke_registry()[..1], &[crate::SEED], 1);
        assert_eq!(calm[0].faults, "none");
        assert_eq!(calm[0].summary.goodput_ratio, 1.0);
        assert_eq!(calm[0].summary.lost_work_s, 0.0);
    }

    #[test]
    fn every_workload_family_lands_in_the_smoke_csv() {
        let cells = run_sweep(&smoke_registry(), &[1], 4);
        for family in ["fs", "real", "burst", "diurnal", "swf-tiny"] {
            assert!(
                cells.iter().any(|c| c.workload == family),
                "{family} missing from sweep"
            );
        }
        for backfill in ["off", "easy1", "easy8", "conservative"] {
            assert!(
                cells.iter().any(|c| c.backfill == backfill),
                "{backfill} missing from sweep"
            );
        }
    }
}
