//! One entry point per table/figure of the paper.

use dmr_cluster::{DiskModel, NetworkModel};
use dmr_core::config::EstimateMode;
use dmr_core::{
    compare_fixed_flexible, run_experiment, ExperimentConfig, ExperimentResult, SimJob,
};
use dmr_metrics::{csv::sparkline, gain_pct, WorkloadSummary};
use dmr_workload::{WorkloadConfig, WorkloadGenerator};

use crate::report::{pct, secs, table};

/// A fixed-vs-flexible makespan comparison (Figures 3, 7, 10).
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    pub jobs: u32,
    pub fixed_s: f64,
    pub flexible_s: f64,
    pub gain_pct: f64,
}

/// Full summaries per workload size (Table II, Figure 11).
#[derive(Clone, Debug)]
pub struct SummaryPair {
    pub jobs: u32,
    pub fixed: WorkloadSummary,
    pub flexible: WorkloadSummary,
}

/// Fixed + flexible evolution traces (Figures 4, 5, 6, 12).
pub struct Evolution {
    pub label: String,
    pub fixed: ExperimentResult,
    pub flexible: ExperimentResult,
}

fn fs_workload(jobs: u32, seed: u64) -> Vec<SimJob> {
    SimJob::from_specs(
        WorkloadGenerator::new(WorkloadConfig::fs_preliminary(jobs), seed).generate(),
    )
}

fn fs_micro_workload(jobs: u32, seed: u64) -> Vec<SimJob> {
    SimJob::from_specs(
        WorkloadGenerator::new(WorkloadConfig::fs_micro_steps(jobs), seed).generate(),
    )
}

fn real_workload(jobs: u32, seed: u64) -> Vec<SimJob> {
    SimJob::from_specs(WorkloadGenerator::new(WorkloadConfig::real_mix(jobs), seed).generate())
}

fn compare(cfg: &ExperimentConfig, jobs: &[SimJob], n: u32) -> ComparisonRow {
    let (fixed, flexible) = compare_fixed_flexible(cfg, jobs);
    ComparisonRow {
        jobs: n,
        fixed_s: fixed.summary.makespan_s,
        flexible_s: flexible.summary.makespan_s,
        gain_pct: gain_pct(fixed.summary.makespan_s, flexible.summary.makespan_s),
    }
}

fn comparison_table(title: &str, rows: &[ComparisonRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.jobs.to_string(),
                secs(r.fixed_s),
                secs(r.flexible_s),
                pct(r.gain_pct),
            ]
        })
        .collect();
    format!(
        "{title}\n{}",
        table(&["jobs", "fixed (s)", "flexible (s)", "gain"], &body)
    )
}

// ---------------------------------------------------------------------
// Figure 1 — C/R vs DMR reconfiguration cost (N-body, 48 -> {12,24,48})
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct Fig1Row {
    pub from: u32,
    pub to: u32,
    pub dmr_spawn_s: f64,
    pub cr_spawn_s: f64,
    pub ratio: f64,
}

/// Figure 1: time of the non-solving (spawn + data) stage when resizing an
/// N-body job from 48 processes, under checkpoint/restart vs the DMR API.
/// The paper's labels are the C/R-to-DMR ratios (31.4×, 63.75×, 77×).
pub fn fig1() -> Vec<Fig1Row> {
    let net = NetworkModel::fdr10();
    let disk = DiskModel::gpfs();
    // N-body state: particles array; ~1 GiB at 48 ranks (§VII-B4 scale).
    let data: u64 = 1 << 30;
    [(48u32, 12u32), (48, 24), (48, 48)]
        .iter()
        .map(|&(from, to)| {
            let dmr = net.dmr_reconfigure_time(data, from, to).as_secs_f64();
            let cr = disk.cr_reconfigure_time(data, from, to).as_secs_f64();
            Fig1Row {
                from,
                to,
                dmr_spawn_s: dmr,
                cr_spawn_s: cr,
                ratio: cr / dmr,
            }
        })
        .collect()
}

pub fn fig1_report() -> String {
    let rows: Vec<Vec<String>> = fig1()
        .iter()
        .map(|r| {
            vec![
                format!("{}-{}", r.from, r.to),
                format!("{:.2}", r.dmr_spawn_s),
                format!("{:.2}", r.cr_spawn_s),
                format!("{:.1}x", r.ratio),
            ]
        })
        .collect();
    format!(
        "Figure 1: spawning stage, C/R vs DMR (N-body)\n{}",
        table(
            &["procs (init-resized)", "DMR (s)", "C/R (s)", "C/R / DMR"],
            &rows
        )
    )
}

// ---------------------------------------------------------------------
// Table I — application configuration (input parameters)
// ---------------------------------------------------------------------

pub fn table1_report() -> String {
    use dmr_workload::generator::table1;
    use dmr_workload::AppClass;
    let rows: Vec<Vec<String>> = [
        AppClass::Fs,
        AppClass::Cg,
        AppClass::Jacobi,
        AppClass::Nbody,
    ]
    .iter()
    .map(|&app| {
        let (steps, m, data) = table1(app);
        vec![
            app.name().to_string(),
            steps.to_string(),
            m.min_procs.to_string(),
            m.max_procs.to_string(),
            m.preferred.map_or("-".into(), |p| p.to_string()),
            m.sched_period_s
                .map_or("-".into(), |p| format!("{p} seconds")),
            format!("{:.1} GiB", data as f64 / (1u64 << 30) as f64),
        ]
    })
    .collect();
    format!(
        "Table I: configuration parameters for the applications\n{}",
        table(
            &[
                "app",
                "iterations",
                "min",
                "max",
                "preferred",
                "sched period",
                "data"
            ],
            &rows
        )
    )
}

// ---------------------------------------------------------------------
// Figures 3/7 — FS workloads, synchronous / asynchronous
// ---------------------------------------------------------------------

/// Figure 3: fixed vs flexible FS workloads (synchronous scheduling).
pub fn fig3(job_counts: &[u32], seed: u64) -> Vec<ComparisonRow> {
    let cfg = ExperimentConfig::preliminary();
    job_counts
        .iter()
        .map(|&n| compare(&cfg, &fs_workload(n, seed), n))
        .collect()
}

pub fn fig3_report(job_counts: &[u32], seed: u64) -> String {
    comparison_table(
        "Figure 3: fixed vs flexible workloads (synchronous)",
        &fig3(job_counts, seed),
    )
}

/// Figure 7: the same comparison under asynchronous action selection.
pub fn fig7(job_counts: &[u32], seed: u64) -> Vec<ComparisonRow> {
    let cfg = ExperimentConfig::preliminary().asynchronous();
    job_counts
        .iter()
        .map(|&n| compare(&cfg, &fs_workload(n, seed), n))
        .collect()
}

pub fn fig7_report(job_counts: &[u32], seed: u64) -> String {
    comparison_table(
        "Figure 7: fixed vs flexible workloads (asynchronous)",
        &fig7(job_counts, seed),
    )
}

// ---------------------------------------------------------------------
// Figures 4/5/6/12 — evolution traces
// ---------------------------------------------------------------------

fn evolution(label: &str, cfg: &ExperimentConfig, jobs: &[SimJob]) -> Evolution {
    let (fixed, flexible) = compare_fixed_flexible(cfg, jobs);
    Evolution {
        label: label.to_string(),
        fixed,
        flexible,
    }
}

/// Figure 4: evolution of the 10-job FS workload.
pub fn fig4(seed: u64) -> Evolution {
    evolution(
        "Figure 4: 10-job workload evolution",
        &ExperimentConfig::preliminary(),
        &fs_workload(10, seed),
    )
}

/// Figure 5: evolution of the 25-job FS workload.
pub fn fig5(seed: u64) -> Evolution {
    evolution(
        "Figure 5: 25-job workload evolution",
        &ExperimentConfig::preliminary(),
        &fs_workload(25, seed),
    )
}

/// Figure 6: evolution of the 10-job workload under asynchronous
/// scheduling (the outdated-decision gaps).
pub fn fig6(seed: u64) -> Evolution {
    evolution(
        "Figure 6: 10-job workload, asynchronous scheduling",
        &ExperimentConfig::preliminary().asynchronous(),
        &fs_workload(10, seed),
    )
}

/// Figure 12: evolution of the 50-job production workload.
pub fn fig12(seed: u64) -> Evolution {
    evolution(
        "Figure 12: 50-job production workload evolution",
        &ExperimentConfig::production(),
        &real_workload(50, seed),
    )
}

impl Evolution {
    /// Terminal rendering: allocation and completed-job sparklines for
    /// both runs, over each run's own makespan.
    pub fn render(&self, width: usize) -> String {
        let mut out = format!("{}\n", self.label);
        for (name, r) in [("fixed", &self.fixed), ("flexible", &self.flexible)] {
            out.push_str(&format!(
                "  {name:8} makespan {:>9.1}s  util {:>5.1}%\n",
                r.summary.makespan_s,
                r.summary.utilization * 100.0
            ));
            out.push_str(&format!(
                "    alloc nodes |{}|\n",
                sparkline(&r.allocation, r.end_time, width)
            ));
            out.push_str(&format!(
                "    running     |{}|\n",
                sparkline(&r.running, r.end_time, width)
            ));
            out.push_str(&format!(
                "    completed   |{}|\n",
                sparkline(&r.completed, r.end_time, width)
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Figure 8 — heterogeneous flexible/fixed mixes
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct Fig8Row {
    pub flexible_ratio_pct: u32,
    pub makespan_s: f64,
}

/// Figure 8: 100-job FS workloads with 0–100 % flexible jobs.
pub fn fig8(jobs: u32, seed: u64) -> Vec<Fig8Row> {
    let cfg = ExperimentConfig::preliminary();
    [0u32, 25, 50, 75, 100]
        .iter()
        .map(|&ratio| {
            let mut wcfg = WorkloadConfig::fs_preliminary(jobs);
            wcfg.flexible_ratio = ratio as f64 / 100.0;
            let jobs_v = SimJob::from_specs(WorkloadGenerator::new(wcfg, seed).generate());
            let r = run_experiment(&cfg, &jobs_v);
            Fig8Row {
                flexible_ratio_pct: ratio,
                makespan_s: r.summary.makespan_s,
            }
        })
        .collect()
}

pub fn fig8_report(jobs: u32, seed: u64) -> String {
    let rows = fig8(jobs, seed);
    let base = rows[0].makespan_s;
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}%", r.flexible_ratio_pct),
                secs(r.makespan_s),
                pct(gain_pct(base, r.makespan_s)),
            ]
        })
        .collect();
    format!(
        "Figure 8: execution time vs rate of flexible jobs ({jobs} jobs)\n{}",
        table(&["flexible", "makespan (s)", "gain vs 0%"], &body)
    )
}

// ---------------------------------------------------------------------
// Figure 9 — checking-inhibitor periods on micro-step workloads
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// `None` = plain flexible (no inhibitor).
    pub period_s: Option<f64>,
    /// Per workload size: (jobs, flexible makespan, gain vs fixed %).
    pub cells: Vec<(u32, f64, f64)>,
}

/// Figure 9: micro-step (≈2 s) FS workloads under inhibitor periods
/// {off, 2, 5, 10, 20} seconds, gains relative to the fixed workload.
pub fn fig9(job_counts: &[u32], seed: u64) -> Vec<Fig9Row> {
    let periods: [Option<f64>; 5] = [None, Some(2.0), Some(5.0), Some(10.0), Some(20.0)];
    // Fixed baselines per size.
    let fixed_cfg = ExperimentConfig::preliminary().as_fixed();
    let baselines: Vec<(u32, f64, Vec<SimJob>)> = job_counts
        .iter()
        .map(|&n| {
            let jobs = fs_micro_workload(n, seed);
            let fixed = run_experiment(&fixed_cfg, &jobs);
            (n, fixed.summary.makespan_s, jobs)
        })
        .collect();
    periods
        .iter()
        .map(|&period| {
            let cfg = ExperimentConfig::preliminary().with_inhibitor(period);
            let cells = baselines
                .iter()
                .map(|(n, fixed_s, jobs)| {
                    let r = run_experiment(&cfg, jobs);
                    (
                        *n,
                        r.summary.makespan_s,
                        gain_pct(*fixed_s, r.summary.makespan_s),
                    )
                })
                .collect();
            Fig9Row {
                period_s: period,
                cells,
            }
        })
        .collect()
}

pub fn fig9_report(job_counts: &[u32], seed: u64) -> String {
    let rows = fig9(job_counts, seed);
    let mut headers: Vec<String> = vec!["configuration".into()];
    for n in job_counts {
        headers.push(format!("{n} jobs"));
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![match r.period_s {
                None => "Flexible".to_string(),
                Some(p) => format!("Sched {p:.0}"),
            }];
            for (_, makespan, gain) in &r.cells {
                row.push(format!("{} ({})", secs(*makespan), pct(*gain)));
            }
            row
        })
        .collect();
    format!(
        "Figure 9: inhibition periods on micro-step workloads (gain vs fixed)\n{}",
        table(&headers_ref, &body)
    )
}

// ---------------------------------------------------------------------
// Figures 10/11 + Table II — the production use case
// ---------------------------------------------------------------------

/// Shared computation for Figures 10, 11 and Table II.
pub fn production_summaries(job_counts: &[u32], seed: u64) -> Vec<SummaryPair> {
    let cfg = ExperimentConfig::production();
    job_counts
        .iter()
        .map(|&n| {
            let jobs = real_workload(n, seed);
            let (fixed, flexible) = compare_fixed_flexible(&cfg, &jobs);
            SummaryPair {
                jobs: n,
                fixed: fixed.summary,
                flexible: flexible.summary,
            }
        })
        .collect()
}

pub fn fig10_report(pairs: &[SummaryPair]) -> String {
    let body: Vec<Vec<String>> = pairs
        .iter()
        .map(|p| {
            vec![
                p.jobs.to_string(),
                secs(p.fixed.makespan_s),
                secs(p.flexible.makespan_s),
                pct(gain_pct(p.fixed.makespan_s, p.flexible.makespan_s)),
            ]
        })
        .collect();
    format!(
        "Figure 10: production workload execution times\n{}",
        table(&["jobs", "fixed (s)", "flexible (s)", "gain"], &body)
    )
}

pub fn fig11_report(pairs: &[SummaryPair]) -> String {
    let body: Vec<Vec<String>> = pairs
        .iter()
        .map(|p| {
            vec![
                p.jobs.to_string(),
                secs(p.fixed.avg_waiting_s),
                secs(p.flexible.avg_waiting_s),
                pct(gain_pct(p.fixed.avg_waiting_s, p.flexible.avg_waiting_s)),
            ]
        })
        .collect();
    format!(
        "Figure 11: average job waiting time\n{}",
        table(&["jobs", "fixed (s)", "flexible (s)", "gain"], &body)
    )
}

pub fn table2_report(pairs: &[SummaryPair]) -> String {
    let mut headers: Vec<String> = vec!["measure".into()];
    for p in pairs {
        headers.push(format!("{} fixed", p.jobs));
        headers.push(format!("{} flex", p.jobs));
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row = |name: &str, f: &dyn Fn(&WorkloadSummary) -> String| {
        let mut r = vec![name.to_string()];
        for p in pairs {
            r.push(f(&p.fixed));
            r.push(f(&p.flexible));
        }
        rows.push(r);
    };
    row("utilization (%)", &|s| {
        format!("{:.2}", s.utilization * 100.0)
    });
    row("avg wait (s)", &|s| secs(s.avg_waiting_s));
    row("avg exec (s)", &|s| secs(s.avg_execution_s));
    row("avg completion (s)", &|s| secs(s.avg_completion_s));
    row("p50 completion (s)", &|s| secs(s.completion_q.p50_s));
    row("p95 completion (s)", &|s| secs(s.completion_q.p95_s));
    row("p99 completion (s)", &|s| secs(s.completion_q.p99_s));
    row("p95 wait (s)", &|s| secs(s.waiting_q.p95_s));
    format!(
        "Table II: summary of measures from all the workloads\n{}",
        table(&headers_ref, &rows)
    )
}

// ---------------------------------------------------------------------
// Histogram view — the tail distributions behind the percentile columns
// ---------------------------------------------------------------------

/// ASCII histograms of the waiting / execution / completion distributions
/// for a fixed-vs-flexible pair of runs on the preliminary FS workload —
/// the `repro --hist` view. The histograms are rebuilt from the buffered
/// outcomes with the same [`dmr_metrics::LogHistogram`] bins the
/// streaming path uses, so what this prints is exactly what the P50/P95/
/// P99 columns are read from.
pub fn hist_report(jobs: u32, seed: u64) -> String {
    use crate::report::ascii_histogram;
    use dmr_metrics::LogHistogram;

    let workload = fs_workload(jobs, seed);
    let (fixed, flexible) = compare_fixed_flexible(&ExperimentConfig::preliminary(), &workload);
    type Dim = (&'static str, fn(&dmr_metrics::JobOutcome) -> f64);
    let dims: [Dim; 3] = [
        ("waiting", |o| o.waiting_s()),
        ("execution", |o| o.execution_s()),
        ("completion", |o| o.completion_s()),
    ];
    let mut out = format!("Job-time distributions ({jobs}-job FS workload, seed {seed})\n");
    for (name, r) in [("fixed", &fixed), ("flexible", &flexible)] {
        out.push_str(&format!("\n{name}:\n"));
        for (dim, value) in dims {
            let mut h = LogHistogram::new();
            for o in &r.outcomes {
                h.record_secs(value(o));
            }
            out.push_str(&format!(" {dim} time (s):\n"));
            out.push_str(&ascii_histogram(&h, 48));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_ratios_in_paper_band() {
        let rows = fig1();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.ratio > 20.0, "{}-{}: ratio {}", r.from, r.to, r.ratio);
        }
        // The paper's ratios grow with the resized process count.
        assert!(rows[0].ratio < rows[2].ratio);
    }

    #[test]
    fn fig3_small_scale_flexible_wins() {
        let rows = fig3(&[10, 25], crate::SEED);
        for r in &rows {
            assert!(r.fixed_s > 0.0 && r.flexible_s > 0.0);
            assert!(
                r.gain_pct > 0.0,
                "{} jobs: gain {} (fixed {}, flex {})",
                r.jobs,
                r.gain_pct,
                r.fixed_s,
                r.flexible_s
            );
        }
    }

    #[test]
    fn table1_lists_all_apps() {
        let t = table1_report();
        for name in ["FS", "CG", "Jacobi", "N-body"] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
    }
}

// ---------------------------------------------------------------------
// Ablations — the design choices DESIGN.md calls out
// ---------------------------------------------------------------------

/// One ablation configuration's outcome on the 50-job production mix.
#[derive(Clone, Debug)]
pub struct AblationRow {
    pub name: &'static str,
    pub makespan_s: f64,
    pub avg_wait_s: f64,
    pub utilization: f64,
}

/// Runs the flexible production workload under each ablated
/// configuration. The first row is the fixed baseline; the second the
/// full flexible system; the rest disable one mechanism each.
pub fn ablations(jobs: u32, seed: u64) -> Vec<AblationRow> {
    let workload = real_workload(jobs, seed);
    let base = ExperimentConfig::production();
    let variants: Vec<(&'static str, ExperimentConfig)> = vec![
        ("fixed (rigid)", base.as_fixed()),
        ("flexible (full system)", base),
        ("flexible, backfill off", {
            let mut c = base;
            c.backfill = false;
            c
        }),
        ("flexible, shrink boost off", {
            let mut c = base;
            c.shrink_boost = false;
            c
        }),
        ("flexible, oracle estimates", {
            let mut c = base;
            c.estimate_mode = EstimateMode::Actual;
            c
        }),
        ("flexible, asynchronous", base.asynchronous()),
        ("flexible, inhibitor off", base.with_inhibitor(None)),
        ("flexible, resizer timeout 0s", {
            let mut c = base.asynchronous();
            c.resizer_timeout_s = 0.0;
            c
        }),
    ];
    variants
        .into_iter()
        .map(|(name, cfg)| {
            let r = run_experiment(&cfg, &workload);
            AblationRow {
                name,
                makespan_s: r.summary.makespan_s,
                avg_wait_s: r.summary.avg_waiting_s,
                utilization: r.summary.utilization,
            }
        })
        .collect()
}

pub fn ablations_report(jobs: u32, seed: u64) -> String {
    let rows = ablations(jobs, seed);
    let baseline = rows[1].makespan_s;
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                secs(r.makespan_s),
                pct(-gain_pct(baseline, r.makespan_s)),
                secs(r.avg_wait_s),
                format!("{:.1}%", r.utilization * 100.0),
            ]
        })
        .collect();
    format!(
        "Ablations ({jobs}-job production mix; delta vs full flexible system)\n{}",
        table(
            &[
                "configuration",
                "makespan (s)",
                "vs flexible",
                "avg wait (s)",
                "util"
            ],
            &body
        )
    )
}
