//! Plain-text table formatting for the `repro` binary.

/// Formats a row-major table with a header, padding columns to width.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// `42.0` → `"42.0%"` with sign for gains.
pub fn pct(v: f64) -> String {
    format!("{v:+.2}%")
}

/// Seconds with one decimal.
pub fn secs(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["jobs", "fixed"],
            &[
                vec!["10".into(), "123.4".into()],
                vec!["400".into(), "7.0".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("jobs"));
        assert!(lines[2].ends_with("123.4"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(41.97), "+41.97%");
        assert_eq!(pct(-6.8), "-6.80%");
        assert_eq!(secs(24599.04), "24599.0");
    }
}
