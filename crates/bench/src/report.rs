//! Plain-text table and histogram formatting for the `repro` binary.

use dmr_metrics::LogHistogram;

/// Formats a row-major table with a header, padding columns to width.
///
/// Total over any input: an empty header renders an empty table instead
/// of underflowing, and rows wider than the header get their extra cells
/// rendered (under empty header padding) rather than silently dropped.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = rows.iter().map(Vec::len).fold(headers.len(), usize::max);
    if cols == 0 {
        return String::new();
    }
    let mut widths = vec![0usize; cols];
    for (i, h) in headers.iter().enumerate() {
        widths[i] = h.len();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[&str], widths: &[usize]| -> String {
        widths
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let c = cells.get(i).copied().unwrap_or("");
                format!("{c:>w$}")
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        let cells: Vec<&str> = row.iter().map(String::as_str).collect();
        out.push_str(&fmt_row(&cells, &widths));
        out.push('\n');
    }
    out
}

/// `42.0` → `"42.0%"` with sign for gains.
pub fn pct(v: f64) -> String {
    format!("{v:+.2}%")
}

/// Seconds with one decimal.
pub fn secs(v: f64) -> String {
    format!("{v:.1}")
}

/// Renders a [`LogHistogram`] as one ASCII row per non-empty bin:
/// `[lo, hi) | count | bar`, bars scaled to `width` characters at the
/// modal bin. Empty histograms render a placeholder line.
pub fn ascii_histogram(h: &LogHistogram, width: usize) -> String {
    let buckets = h.nonzero_buckets();
    if buckets.is_empty() {
        return "  (no samples)\n".to_string();
    }
    let peak = buckets.iter().map(|&(_, _, c)| c).max().unwrap_or(1);
    let mut out = String::new();
    for (lo, hi, count) in &buckets {
        let bar = (count * width as u64).div_ceil(peak) as usize;
        out.push_str(&format!(
            "  [{:>10.3}, {:>10.3}) {:>8} |{}\n",
            lo,
            hi,
            count,
            "#".repeat(bar)
        ));
    }
    out.push_str(&format!(
        "  n={} mean={:.3}s p50={:.3}s p95={:.3}s p99={:.3}s max={:.3}s\n",
        h.count(),
        h.mean_s(),
        h.percentile_s(50.0),
        h.percentile_s(95.0),
        h.percentile_s(99.0),
        h.max_s()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmr_sim::Span;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["jobs", "fixed"],
            &[
                vec!["10".into(), "123.4".into()],
                vec!["400".into(), "7.0".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("jobs"));
        assert!(lines[2].ends_with("123.4"));
    }

    #[test]
    fn table_is_total_on_empty_headers() {
        // Used to underflow `widths.len() - 1` and panic.
        assert_eq!(table(&[], &[]), "");
        // Headerless rows still render.
        let t = table(&[], &[vec!["a".into(), "bb".into()]]);
        assert!(t.lines().count() >= 3);
        assert!(t.contains("bb"));
    }

    #[test]
    fn table_renders_rows_wider_than_the_header() {
        // Extra cells used to be dropped silently.
        let t = table(
            &["only"],
            &[vec!["1".into(), "overflow-cell".into(), "x".into()]],
        );
        assert!(t.contains("overflow-cell"), "wide cells must render:\n{t}");
        assert!(t.contains('x'));
        // Short rows pad instead of panicking.
        let t = table(&["a", "b"], &[vec!["1".into()]]);
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(41.97), "+41.97%");
        assert_eq!(pct(-6.8), "-6.80%");
        assert_eq!(secs(24599.04), "24599.0");
    }

    #[test]
    fn ascii_histogram_renders_bins_and_stats() {
        let mut h = LogHistogram::new();
        for i in 1..=50 {
            h.record(Span::from_secs(i));
        }
        let out = ascii_histogram(&h, 40);
        assert!(out.contains('#'));
        assert!(out.contains("n=50"));
        assert!(out.lines().count() >= 2);
        assert_eq!(
            ascii_histogram(&LogHistogram::new(), 40),
            "  (no samples)\n"
        );
    }
}
