//! Scheduler hot-path throughput benchmark — the `BENCH_sched.json`
//! trajectory.
//!
//! Drives a synthetic churn workload (a full machine with a deep pending
//! queue, one completion + one submission + one scheduling pass per
//! round, a backfill pass every `bf_interval`-like 30 rounds) through
//! the scheduler once per mode per grid cell: the arena hot path
//! ([`SchedIndex::Arena`], the default), the previous incremental-index
//! path ([`SchedIndex::Indexed`], the baseline the arena is gated
//! against) and — on the cells where it finishes in reasonable time —
//! the pre-index scan reference ([`SchedIndex::ScanReference`]). All
//! runs execute the *identical* operation sequence — the paths are
//! decision-identical by construction (pinned by
//! `tests/index_equivalence.rs`) — so the wall-clock ratios are a pure
//! measure of each optimisation layer.
//!
//! The document `repro --bench-json` maintains is **append-only**: every
//! invocation renders one *run* object ([`render_run`]) and splices it
//! into the existing `dmr-bench-sched/v2` document ([`append_run`]),
//! leaving every prior run byte-for-byte intact — the file is a perf
//! trajectory across PRs, not a snapshot. A legacy `dmr-bench-sched/v1`
//! snapshot is migrated verbatim as run 0. [`validate_bench_json`] is
//! the schema gate the CI smoke step (and the unit tests) run against
//! the rendered document.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

use dmr_cluster::Cluster;
use dmr_sim::{SimTime, Span};
use dmr_slurm::{BackfillFamily, JobRequest, SchedIndex, Slurm, SlurmConfig};

/// Schema identifier embedded in (and required from) every document.
pub const SCHEMA: &str = "dmr-bench-sched/v2";

/// The previous single-run schema; documents carrying it are migrated
/// verbatim as run 0 of a v2 trajectory by [`append_run`].
pub const SCHEMA_V1: &str = "dmr-bench-sched/v1";

const DOC_PREFIX: &str = "{\"schema\": \"dmr-bench-sched/v2\",\n\"runs\": [\n";
/// Every document ends with these bytes, so appending a run is a pure
/// splice: strip the suffix, add `",\n" + run`, restore the suffix —
/// prior runs stay byte-identical (the CI trajectory invariant).
const DOC_SUFFIX: &str = "\n]}\n";

/// One (cluster size, queue depth, mode) measurement.
#[derive(Clone, Debug)]
pub struct CellResult {
    pub nodes: u32,
    pub queue_depth: u32,
    /// `"arena"`, `"indexed"` or `"scan"`.
    pub mode: &'static str,
    /// Backfill family the cell ran (`"easy1"`, `"easy8"`, `"easy64"` or
    /// `"conservative"`) — the backfill-depth axis.
    pub backfill: &'static str,
    pub rounds: u32,
    /// Scheduling events processed: submissions + completions + passes +
    /// job starts.
    pub events: u64,
    pub jobs_started: u64,
    pub peak_queue_depth: u64,
    pub elapsed_s: f64,
}

impl CellResult {
    pub fn events_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.events as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    pub fn jobs_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.jobs_started as f64 / self.elapsed_s
        } else {
            0.0
        }
    }
}

/// The benchmark grid: `(cluster nodes, pending queue depth)` cells,
/// ending with the headline 65,536-node / 100k-deep scenario.
pub fn grid(smoke: bool) -> Vec<(u32, u32)> {
    if smoke {
        vec![(64, 100), (65_536, 100_000)]
    } else {
        vec![
            (64, 100),
            (256, 1_000),
            (1024, 4_000),
            (4096, 1_000),
            (4096, 10_000),
            (16_384, 40_000),
            (65_536, 100_000),
        ]
    }
}

/// Modes measured on one cell. The scan reference recomputes every
/// pending priority per pass — O(queue) work per round that the paper's
/// own trajectory already quantified at 4096×10k — so the cells beyond
/// that scale run only the two indexed paths (the contrast the headline
/// gate reads).
pub fn modes_for(nodes: u32, depth: u32) -> Vec<SchedIndex> {
    if nodes > 4096 || depth > 10_000 {
        vec![SchedIndex::Arena, SchedIndex::Indexed]
    } else {
        vec![
            SchedIndex::Arena,
            SchedIndex::Indexed,
            SchedIndex::ScanReference,
        ]
    }
}

/// The backfill-depth axis: deeper families measured on top of the
/// default EASY-1 arena cell (k ∈ {8, 64} and conservative; the k = 1
/// baseline for the ratio *is* the regular arena cell).
pub fn backfill_axis_families() -> [BackfillFamily; 3] {
    [
        BackfillFamily::easy(8),
        BackfillFamily::easy(64),
        BackfillFamily::Conservative,
    ]
}

/// The grid cells that also run the backfill-depth axis: the 4096×10k
/// mid-scale cell and the 65,536×100k headline cell (smoke runs only the
/// headline cell, which its grid already ends with).
pub fn backfill_axis_cells(smoke: bool) -> Vec<(u32, u32)> {
    if smoke {
        vec![(65_536, 100_000)]
    } else {
        vec![(4096, 10_000), (65_536, 100_000)]
    }
}

/// Rounds of churn per cell. The smoke count is chosen so the headline
/// cell's timed section is long enough (≥ tens of milliseconds) for the
/// arena/indexed ratio to be stable: at 30 rounds the arena sample sat
/// under 10 ms and run-to-run noise alone swung the smoke gate across
/// the 5x bar.
pub fn rounds(smoke: bool) -> u32 {
    if smoke {
        150
    } else {
        300
    }
}

/// Runs one grid cell under `mode` with the default EASY-1 backfill.
///
/// The churn loop mirrors the driver's steady state: the machine starts
/// full (one running job per 64th of the cluster), the queue starts
/// `depth` deep with mixed widths, and every round completes the oldest
/// running job, submits a replacement, and runs the event-driven
/// scheduling pass; every 30th round runs the periodic backfill pass
/// (Slurm's `bf_interval` at one round per second).
pub fn run_cell(nodes: u32, depth: u32, mode: SchedIndex, rounds: u32) -> CellResult {
    run_cell_family(nodes, depth, mode, rounds, BackfillFamily::easy(1))
}

/// [`run_cell`] with an explicit backfill family — the backfill-depth
/// axis runs the arena path under EASY-8 / EASY-64 / conservative on the
/// same churn sequence.
pub fn run_cell_family(
    nodes: u32,
    depth: u32,
    mode: SchedIndex,
    rounds: u32,
    family: BackfillFamily,
) -> CellResult {
    let mut cfg = SlurmConfig::for_cluster(nodes);
    cfg.sched_index = mode;
    cfg.backfill_family = family;
    // Steady-state churn would grow the terminal-record table without
    // bound; the streaming driver prunes it, so the bench does too.
    cfg.retain_completed = false;
    let mut s = Slurm::new(Cluster::new(nodes, 16), cfg);

    let width = (nodes / 64).max(1);
    let mut running: VecDeque<_> = VecDeque::new();
    for i in 0..nodes / width {
        s.submit(
            JobRequest::rigid(format!("run{i}"), width)
                .with_expected_runtime(Span::from_secs(600 + (u64::from(i) * 37) % 600)),
            SimTime::ZERO,
        );
    }
    for start in s.schedule(SimTime::ZERO) {
        running.push_back(start.id);
    }
    for i in 0..depth {
        s.submit(
            JobRequest::rigid(format!("pend{i}"), 1 + (i * 7) % (width * 4))
                .with_expected_runtime(Span::from_secs(120 + (u64::from(i) * 13) % 900)),
            SimTime::from_secs(1 + u64::from(i) % 100),
        );
    }

    let mut events: u64 = 0;
    let mut jobs_started: u64 = 0;
    let mut pending = u64::from(depth);
    let mut peak = pending;
    let t0 = Instant::now();
    for r in 0..rounds {
        let now = SimTime::from_secs(1000 + u64::from(r));
        if let Some(id) = running.pop_front() {
            s.complete(id, now);
            events += 1;
        }
        let i = depth + r;
        s.submit(
            JobRequest::rigid(format!("churn{r}"), 1 + (i * 7) % (width * 4))
                .with_expected_runtime(Span::from_secs(120 + (u64::from(i) * 13) % 900)),
            now,
        );
        pending += 1;
        events += 1;
        events += 1; // the scheduling pass itself
        for start in s.schedule(now) {
            running.push_back(start.id);
            jobs_started += 1;
            pending -= 1;
            events += 1;
        }
        if r % 30 == 29 {
            events += 1;
            for start in s.backfill_pass(now) {
                running.push_back(start.id);
                jobs_started += 1;
                pending -= 1;
                events += 1;
            }
        }
        peak = peak.max(pending);
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    CellResult {
        nodes,
        queue_depth: depth,
        mode: match mode {
            SchedIndex::Arena => "arena",
            SchedIndex::Indexed => "indexed",
            SchedIndex::ScanReference => "scan",
        },
        backfill: family.label(),
        rounds,
        events,
        jobs_started,
        peak_queue_depth: peak,
        elapsed_s,
    }
}

/// Measurement repeats per cell; the fastest repeat is kept. Smoke cells
/// time only ~150 churn rounds, short enough that scheduler-interference
/// noise alone used to swing the CI speedup gate across the 5x bar —
/// best-of-3 reads through the noise. Full cells are long enough to take
/// a single measurement.
pub fn repeats(smoke: bool) -> u32 {
    if smoke {
        3
    } else {
        1
    }
}

fn best_cell(
    nodes: u32,
    depth: u32,
    mode: SchedIndex,
    rounds: u32,
    family: BackfillFamily,
    reps: u32,
) -> CellResult {
    let mut best = run_cell_family(nodes, depth, mode, rounds, family);
    for _ in 1..reps {
        let next = run_cell_family(nodes, depth, mode, rounds, family);
        debug_assert_eq!(next.events, best.events, "repeats diverged");
        if next.elapsed_s < best.elapsed_s {
            best = next;
        }
    }
    best
}

/// Runs the whole grid (every [`modes_for`] mode per cell), reporting
/// progress through `progress` (one line per finished cell; `repro`
/// points this at stderr).
pub fn run_grid(smoke: bool, mut progress: impl FnMut(&CellResult)) -> Vec<CellResult> {
    let rounds = rounds(smoke);
    let reps = repeats(smoke);
    let axis = backfill_axis_cells(smoke);
    let mut out = Vec::new();
    for (nodes, depth) in grid(smoke) {
        for mode in modes_for(nodes, depth) {
            let cell = best_cell(nodes, depth, mode, rounds, BackfillFamily::easy(1), reps);
            progress(&cell);
            out.push(cell);
        }
        if axis.contains(&(nodes, depth)) {
            for family in backfill_axis_families() {
                let cell = best_cell(nodes, depth, SchedIndex::Arena, rounds, family, reps);
                progress(&cell);
                out.push(cell);
            }
        }
    }
    out
}

/// Full-precision JSON number. The old `{v:.3}` rendering truncated
/// sub-millisecond `elapsed_s` values to `0.000`, destroying every
/// derived rate for fast cells; Rust's shortest-roundtrip `Display` for
/// `f64` never uses an exponent, so the output is a valid JSON number
/// that parses back to the identical bits.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

/// Renders one grid run as a v2 *run* object (the element
/// [`append_run`] splices into the trajectory document).
///
/// The headline block compares the arena and indexed paths on the last
/// grid cell (the 65,536-node / 100k-pending scenario):
/// `speedup_vs_indexed` is the events-per-second ratio the acceptance
/// gate reads.
pub fn render_run(cells: &[CellResult], smoke: bool, label: &str) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"label\": \"{}\",", label.replace('"', "'"));
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"nodes\": {}, \"queue_depth\": {}, \"mode\": \"{}\", \"backfill\": \"{}\", \
             \"rounds\": {}, \
             \"events\": {}, \"jobs_started\": {}, \"peak_queue_depth\": {}, \
             \"elapsed_s\": {}, \"events_per_sec\": {}, \"jobs_per_sec\": {}}}",
            c.nodes,
            c.queue_depth,
            c.mode,
            c.backfill,
            c.rounds,
            c.events,
            c.jobs_started,
            c.peak_queue_depth,
            json_f64(c.elapsed_s),
            json_f64(c.events_per_sec()),
            json_f64(c.jobs_per_sec()),
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let headline = headline(cells);
    let _ = write!(
        out,
        "  \"headline\": {{\"nodes\": {}, \"queue_depth\": {}, \
         \"arena_events_per_sec\": {}, \"indexed_events_per_sec\": {}, \
         \"speedup_vs_indexed\": {}}}",
        headline.0,
        headline.1,
        json_f64(headline.2),
        json_f64(headline.3),
        json_f64(headline.4),
    );
    if let Some(axis) = backfill_headline(cells) {
        let _ = write!(
            out,
            ",\n  \"backfill_axis\": {{\"nodes\": {}, \"queue_depth\": {}, \
             \"easy1_events_per_sec\": {}, \"conservative_events_per_sec\": {}, \
             \"conservative_vs_easy1\": {}}}",
            axis.0,
            axis.1,
            json_f64(axis.2),
            json_f64(axis.3),
            json_f64(axis.4),
        );
    }
    out.push_str("\n}");
    out
}

/// `(nodes, depth, arena ev/s, indexed ev/s, speedup)` of the last cell.
/// The backfill-depth axis cells (deeper-than-EASY-1 families) are not
/// headline candidates — the headline compares hot-path layers on the
/// paper's Slurm configuration.
fn headline(cells: &[CellResult]) -> (u32, u32, f64, f64, f64) {
    let Some(arena) = cells
        .iter()
        .rev()
        .find(|c| c.mode == "arena" && c.backfill == "easy1")
    else {
        return (0, 0, 0.0, 0.0, 0.0);
    };
    let indexed = cells.iter().rev().find(|c| {
        c.mode == "indexed" && c.nodes == arena.nodes && c.queue_depth == arena.queue_depth
    });
    let Some(indexed) = indexed else {
        return (
            arena.nodes,
            arena.queue_depth,
            arena.events_per_sec(),
            0.0,
            0.0,
        );
    };
    let speedup = if indexed.events_per_sec() > 0.0 {
        arena.events_per_sec() / indexed.events_per_sec()
    } else {
        0.0
    };
    (
        arena.nodes,
        arena.queue_depth,
        arena.events_per_sec(),
        indexed.events_per_sec(),
        speedup,
    )
}

/// `(nodes, depth, easy1 ev/s, conservative ev/s, ratio)` of the last
/// backfill-axis cell — the "deep backfill does not collapse" gate reads
/// the ratio. `None` when the run measured no conservative cell.
fn backfill_headline(cells: &[CellResult]) -> Option<(u32, u32, f64, f64, f64)> {
    let cons = cells
        .iter()
        .rev()
        .find(|c| c.mode == "arena" && c.backfill == "conservative")?;
    let easy1 = cells.iter().rev().find(|c| {
        c.mode == "arena"
            && c.backfill == "easy1"
            && c.nodes == cons.nodes
            && c.queue_depth == cons.queue_depth
    })?;
    let ratio = if easy1.events_per_sec() > 0.0 {
        cons.events_per_sec() / easy1.events_per_sec()
    } else {
        0.0
    };
    Some((
        cons.nodes,
        cons.queue_depth,
        easy1.events_per_sec(),
        cons.events_per_sec(),
        ratio,
    ))
}

/// Splices `run` (a [`render_run`] object) into `existing`, returning
/// the new document:
///
/// * no existing document → a fresh v2 document with one run;
/// * an existing v1 snapshot → migrated **byte-verbatim** as run 0, the
///   new run appended after it;
/// * an existing v2 trajectory → the new run appended; every byte before
///   the document suffix is preserved exactly.
pub fn append_run(existing: Option<&str>, run: &str) -> Result<String, String> {
    let base = match existing.map(str::trim_end) {
        None | Some("") => return Ok(format!("{DOC_PREFIX}{run}{DOC_SUFFIX}")),
        Some(_) => {
            let doc = existing.expect("checked above");
            if doc.contains(SCHEMA_V1) {
                // Legacy single-run snapshot: the whole object becomes
                // run 0, its bytes untouched.
                doc.trim_end().to_string()
            } else if let Some(stripped) = doc.strip_suffix(DOC_SUFFIX) {
                if !doc.starts_with(DOC_PREFIX) {
                    return Err("existing document is not a v2 trajectory".into());
                }
                return Ok(format!("{stripped},\n{run}{DOC_SUFFIX}"));
            } else {
                return Err("existing document has an unrecognised suffix".into());
            }
        }
    };
    Ok(format!("{DOC_PREFIX}{base},\n{run}{DOC_SUFFIX}"))
}

/// Number of runs in a rendered document (label count; the migrated v1
/// run carries no label, so it is counted via its v1 schema marker).
pub fn run_count(doc: &str) -> usize {
    doc.matches("\"label\"").count() + doc.matches(SCHEMA_V1).count()
}

/// Extracts the **last** run's `headline.speedup_vs_indexed` from a
/// rendered document — the one scraper shared by the schema gate and the
/// `repro` acceptance check, so the key format lives in exactly one
/// place.
pub fn headline_speedup(doc: &str) -> Option<f64> {
    let (_, rest) = doc.rsplit_once("\"speedup_vs_indexed\": ")?;
    rest.split(['}', ','])
        .next()
        .and_then(|v| v.trim().parse::<f64>().ok())
}

/// Extracts the **last** run's `backfill_axis.conservative_vs_easy1`
/// ratio — the deep-backfill acceptance gate. `None` when no run carried
/// the backfill-depth axis (every pre-axis document).
pub fn backfill_ratio(doc: &str) -> Option<f64> {
    let (_, rest) = doc.rsplit_once("\"conservative_vs_easy1\": ")?;
    rest.split(['}', ','])
        .next()
        .and_then(|v| v.trim().parse::<f64>().ok())
}

/// Structural schema gate for a rendered document: required keys present,
/// braces balanced, a parseable headline speedup on the last run.
/// Deliberately minimal — it guards the CI artifact against shape
/// regressions, not against perf regressions (those need comparable
/// hardware).
pub fn validate_bench_json(doc: &str) -> Result<(), String> {
    for key in [
        "\"schema\"",
        "\"runs\"",
        "\"label\"",
        "\"smoke\"",
        "\"cells\"",
        "\"headline\"",
        "\"events_per_sec\"",
        "\"jobs_per_sec\"",
        "\"peak_queue_depth\"",
        "\"speedup_vs_indexed\"",
    ] {
        if !doc.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    if !doc.starts_with(DOC_PREFIX) {
        return Err(format!("document does not open a {SCHEMA} trajectory"));
    }
    let opens = doc.matches('{').count();
    let closes = doc.matches('}').count();
    if opens != closes {
        return Err(format!("unbalanced braces: {opens} vs {closes}"));
    }
    let speedup = headline_speedup(doc).ok_or("speedup_vs_indexed is not a number")?;
    if !speedup.is_finite() || speedup < 0.0 {
        return Err(format!("speedup_vs_indexed {speedup} out of range"));
    }
    // The backfill axis is optional (pre-axis runs lack it) but must be
    // well-formed where present.
    if doc.contains("\"backfill_axis\"") {
        let ratio = backfill_ratio(doc).ok_or("conservative_vs_easy1 is not a number")?;
        if !ratio.is_finite() || ratio < 0.0 {
            return Err(format!("conservative_vs_easy1 {ratio} out of range"));
        }
    }
    Ok(())
}

/// Runs the grid and renders one run object — what `repro --bench-json`
/// splices into `BENCH_sched.json` via [`append_run`].
pub fn bench_run(smoke: bool, label: &str, progress: impl FnMut(&CellResult)) -> String {
    render_run(&run_grid(smoke, progress), smoke, label)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cells() -> Vec<CellResult> {
        [
            SchedIndex::Arena,
            SchedIndex::Indexed,
            SchedIndex::ScanReference,
        ]
        .into_iter()
        .map(|m| run_cell(16, 20, m, 5))
        .collect()
    }

    fn tiny_doc() -> String {
        append_run(None, &render_run(&tiny_cells(), true, "t0")).unwrap()
    }

    #[test]
    fn identical_operation_sequences_in_all_modes() {
        let cells = tiny_cells();
        for c in &cells[1..] {
            assert_eq!(cells[0].events, c.events, "{} diverged", c.mode);
            assert_eq!(cells[0].jobs_started, c.jobs_started, "{}", c.mode);
            assert_eq!(cells[0].peak_queue_depth, c.peak_queue_depth, "{}", c.mode);
        }
    }

    #[test]
    fn rendered_document_validates() {
        let doc = tiny_doc();
        validate_bench_json(&doc).unwrap();
        assert!(doc.contains("\"mode\": \"arena\""));
        assert!(doc.contains("\"mode\": \"indexed\""));
        assert!(doc.contains("\"mode\": \"scan\""));
        assert_eq!(run_count(&doc), 1);
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let doc = tiny_doc();
        assert!(validate_bench_json(&doc.replace("speedup_vs_indexed", "nope")).is_err());
        assert!(
            validate_bench_json(&doc[..doc.len() - 3]).is_err(),
            "unbalanced"
        );
        assert!(validate_bench_json("{}").is_err());
    }

    #[test]
    fn append_preserves_prior_runs_byte_for_byte() {
        let cells = tiny_cells();
        let doc1 = append_run(None, &render_run(&cells, true, "t0")).unwrap();
        let doc2 = append_run(Some(&doc1), &render_run(&cells, true, "t1")).unwrap();
        let kept = doc1.len() - DOC_SUFFIX.len();
        assert_eq!(&doc2[..kept], &doc1[..kept], "prior bytes rewritten");
        assert_eq!(run_count(&doc2), 2);
        validate_bench_json(&doc2).unwrap();
        // The scraper reads the *last* run's headline.
        assert!(headline_speedup(&doc2).is_some());
    }

    #[test]
    fn v1_snapshot_migrates_verbatim_as_run_zero() {
        let v1 = "{\n  \"schema\": \"dmr-bench-sched/v1\",\n  \"smoke\": false,\n  \
                  \"cells\": [],\n  \"headline\": {\"speedup_vs_scan\": 11.274}\n}\n";
        let doc = append_run(Some(v1), &render_run(&tiny_cells(), true, "t1")).unwrap();
        assert!(
            doc.contains(v1.trim_end()),
            "v1 bytes must survive untouched"
        );
        assert_eq!(run_count(&doc), 2);
        validate_bench_json(&doc).unwrap();
    }

    #[test]
    fn elapsed_is_rendered_at_full_precision() {
        // The v1 renderer printed `{v:.3}`, flattening fast cells to
        // `"elapsed_s": 0.000` and zeroing every derived rate.
        assert_eq!(json_f64(0.000123456789), "0.000123456789");
        assert_eq!(json_f64(39645.391), "39645.391");
        assert_eq!(json_f64(f64::NAN), "0");
    }

    #[test]
    fn grid_ends_with_the_headline_cell() {
        for smoke in [true, false] {
            assert_eq!(*grid(smoke).last().unwrap(), (65_536, 100_000));
            // The backfill-depth axis always covers the headline cell.
            assert!(backfill_axis_cells(smoke).contains(&(65_536, 100_000)));
            for cell in backfill_axis_cells(smoke) {
                assert!(grid(smoke).contains(&cell), "axis cell {cell:?} off-grid");
            }
        }
        // The headline cell measures exactly the two gated paths.
        assert_eq!(modes_for(65_536, 100_000).len(), 2);
        assert_eq!(modes_for(64, 100).len(), 3);
    }

    #[test]
    fn backfill_axis_lands_in_the_rendered_run() {
        let mut cells = tiny_cells();
        for family in backfill_axis_families() {
            cells.push(run_cell_family(16, 20, SchedIndex::Arena, 5, family));
        }
        let run = render_run(&cells, true, "axis");
        let doc = append_run(None, &run).unwrap();
        validate_bench_json(&doc).unwrap();
        assert!(doc.contains("\"backfill\": \"easy1\""));
        assert!(doc.contains("\"backfill\": \"easy8\""));
        assert!(doc.contains("\"backfill\": \"easy64\""));
        assert!(doc.contains("\"backfill\": \"conservative\""));
        assert!(doc.contains("\"backfill_axis\""));
        let ratio = backfill_ratio(&doc).expect("axis ratio present");
        assert!(ratio.is_finite() && ratio >= 0.0);
        // The headline still compares the EASY-1 hot paths, not an axis
        // cell that happens to come last.
        assert!(doc.contains("\"speedup_vs_indexed\""));
    }

    #[test]
    fn deeper_families_run_the_same_churn_shape() {
        // Same submission/completion churn in every family; the set of
        // backfilled jobs may legitimately differ (deeper reservations
        // can refuse a start EASY-1 would have allowed), so only the
        // shape is pinned here — cross-mode equality within one family
        // is what identical_operation_sequences_in_all_modes covers.
        let easy1 = run_cell(16, 20, SchedIndex::Arena, 5);
        assert_eq!(easy1.backfill, "easy1");
        for family in backfill_axis_families() {
            let deep = run_cell_family(16, 20, SchedIndex::Arena, 5, family);
            assert_eq!(deep.rounds, easy1.rounds);
            assert_eq!(deep.backfill, family.label());
            assert!(
                deep.events > 0 && deep.jobs_started > 0,
                "{}",
                deep.backfill
            );
        }
    }

    #[test]
    fn pre_axis_documents_still_validate() {
        // A trajectory whose runs predate the backfill axis has no
        // backfill_axis block; the validator must keep accepting it.
        let doc = tiny_doc();
        assert!(!doc.contains("\"backfill_axis\""));
        assert_eq!(backfill_ratio(&doc), None);
        validate_bench_json(&doc).unwrap();
    }
}
