//! Scheduler hot-path throughput benchmark — the `BENCH_sched.json`
//! trajectory.
//!
//! Drives a synthetic churn workload (a full machine with a deep pending
//! queue, one completion + one submission + one scheduling pass per
//! round, a backfill pass every `bf_interval`-like 30 rounds) through
//! the scheduler once per mode per grid cell: the arena hot path
//! ([`SchedIndex::Arena`], the default), the previous incremental-index
//! path ([`SchedIndex::Indexed`], the baseline the arena is gated
//! against) and — on the cells where it finishes in reasonable time —
//! the pre-index scan reference ([`SchedIndex::ScanReference`]). All
//! runs execute the *identical* operation sequence — the paths are
//! decision-identical by construction (pinned by
//! `tests/index_equivalence.rs`) — so the wall-clock ratios are a pure
//! measure of each optimisation layer.
//!
//! The document `repro --bench-json` maintains is **append-only**: every
//! invocation renders one *run* object ([`render_run`]) and splices it
//! into the existing `dmr-bench-sched/v2` document ([`append_run`]),
//! leaving every prior run byte-for-byte intact — the file is a perf
//! trajectory across PRs, not a snapshot. A legacy `dmr-bench-sched/v1`
//! snapshot is migrated verbatim as run 0. [`validate_bench_json`] is
//! the schema gate the CI smoke step (and the unit tests) run against
//! the rendered document.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

use dmr_cluster::Cluster;
use dmr_core::MachineMix;
use dmr_sim::{SimTime, Span};
use dmr_slurm::{BackfillFamily, JobRequest, SchedIncremental, SchedIndex, Slurm, SlurmConfig};

/// Schema identifier embedded in (and required from) every document.
pub const SCHEMA: &str = "dmr-bench-sched/v2";

/// The previous single-run schema; documents carrying it are migrated
/// verbatim as run 0 of a v2 trajectory by [`append_run`].
pub const SCHEMA_V1: &str = "dmr-bench-sched/v1";

const DOC_PREFIX: &str = "{\"schema\": \"dmr-bench-sched/v2\",\n\"runs\": [\n";
/// Every document ends with these bytes, so appending a run is a pure
/// splice: strip the suffix, add `",\n" + run`, restore the suffix —
/// prior runs stay byte-identical (the CI trajectory invariant).
const DOC_SUFFIX: &str = "\n]}\n";

/// One (cluster size, queue depth, mode) measurement.
#[derive(Clone, Debug)]
pub struct CellResult {
    pub nodes: u32,
    pub queue_depth: u32,
    /// `"arena"`, `"indexed"` or `"scan"`.
    pub mode: &'static str,
    /// Backfill family the cell ran (`"easy1"`, `"easy8"`, `"easy64"` or
    /// `"conservative"`) — the backfill-depth axis.
    pub backfill: &'static str,
    /// `"on"` (the default incremental scheduler) or `"off"` (the costed
    /// from-scratch baseline) — the incremental axis.
    pub incremental: &'static str,
    /// `"uniform"` (the historical single-class machine) or `"hetero3"`
    /// (the three-class machine driving per-class free sets and
    /// timelines) — the machine axis.
    pub machine: &'static str,
    /// `"off"` (the historical fault-free churn) or `"on"` (periodic
    /// node failures with kill-and-requeue plus repairs) — the fault
    /// axis.
    pub faults: &'static str,
    pub rounds: u32,
    /// Scheduling events processed: submissions + completions + passes +
    /// job starts.
    pub events: u64,
    pub jobs_started: u64,
    pub peak_queue_depth: u64,
    /// Scheduling + backfill passes that executed / that returned via the
    /// O(1) elision path — reported per cell so the incremental win is
    /// attributable, not inferred (always 0 elided under `"off"`).
    pub passes_run: u64,
    pub passes_elided: u64,
    pub elapsed_s: f64,
}

impl CellResult {
    pub fn events_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.events as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    pub fn jobs_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.jobs_started as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Fraction of passes answered by the O(1) elision path.
    pub fn elision_rate(&self) -> f64 {
        let total = self.passes_run + self.passes_elided;
        if total > 0 {
            self.passes_elided as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// The benchmark grid: `(cluster nodes, pending queue depth)` cells,
/// ending with the headline 65,536-node / 100k-deep scenario.
pub fn grid(smoke: bool) -> Vec<(u32, u32)> {
    if smoke {
        vec![(64, 100), (65_536, 100_000)]
    } else {
        vec![
            (64, 100),
            (256, 1_000),
            (1024, 4_000),
            (4096, 1_000),
            (4096, 10_000),
            (16_384, 40_000),
            (65_536, 100_000),
        ]
    }
}

/// Modes measured on one cell. The scan reference recomputes every
/// pending priority per pass — O(queue) work per round that the paper's
/// own trajectory already quantified at 4096×10k — so the cells beyond
/// that scale run only the two indexed paths (the contrast the headline
/// gate reads).
pub fn modes_for(nodes: u32, depth: u32) -> Vec<SchedIndex> {
    if nodes > 4096 || depth > 10_000 {
        vec![SchedIndex::Arena, SchedIndex::Indexed]
    } else {
        vec![
            SchedIndex::Arena,
            SchedIndex::Indexed,
            SchedIndex::ScanReference,
        ]
    }
}

/// The backfill-depth axis: deeper families measured on top of the
/// default EASY-1 arena cell (k ∈ {8, 64} and conservative; the k = 1
/// baseline for the ratio *is* the regular arena cell).
pub fn backfill_axis_families() -> [BackfillFamily; 3] {
    [
        BackfillFamily::easy(8),
        BackfillFamily::easy(64),
        BackfillFamily::Conservative,
    ]
}

/// The grid cells that also run the backfill-depth axis: the 4096×10k
/// mid-scale cell and the 65,536×100k headline cell (smoke runs only the
/// headline cell, which its grid already ends with).
pub fn backfill_axis_cells(smoke: bool) -> Vec<(u32, u32)> {
    if smoke {
        vec![(65_536, 100_000)]
    } else {
        vec![(4096, 10_000), (65_536, 100_000)]
    }
}

/// Rounds of churn per cell. The smoke count is chosen so the headline
/// cell's timed section is long enough (≥ tens of milliseconds) for the
/// arena/indexed ratio to be stable: at 30 rounds the arena sample sat
/// under 10 ms and run-to-run noise alone swung the smoke gate across
/// the 5x bar.
pub fn rounds(smoke: bool) -> u32 {
    if smoke {
        150
    } else {
        300
    }
}

/// Runs one grid cell under `mode` with the default EASY-1 backfill.
///
/// The churn loop mirrors the driver's steady state: the machine starts
/// full (one running job per 64th of the cluster), the queue starts
/// `depth` deep with mixed widths, and every round completes the oldest
/// running job, submits a replacement, and runs the event-driven
/// scheduling pass; every 30th round runs the periodic backfill pass
/// (Slurm's `bf_interval` at one round per second).
pub fn run_cell(nodes: u32, depth: u32, mode: SchedIndex, rounds: u32) -> CellResult {
    run_cell_family(nodes, depth, mode, rounds, BackfillFamily::easy(1))
}

/// [`run_cell`] with an explicit backfill family — the backfill-depth
/// axis runs the arena path under EASY-8 / EASY-64 / conservative on the
/// same churn sequence.
pub fn run_cell_family(
    nodes: u32,
    depth: u32,
    mode: SchedIndex,
    rounds: u32,
    family: BackfillFamily,
) -> CellResult {
    run_cell_incremental(nodes, depth, mode, rounds, family, SchedIncremental::On)
}

/// [`run_cell_family`] with an explicit incremental setting — the
/// incremental axis re-measures the headline cells with pass elision and
/// the persistent plans disabled ([`SchedIncremental::Off`], the costed
/// baseline) on the same churn sequence.
pub fn run_cell_incremental(
    nodes: u32,
    depth: u32,
    mode: SchedIndex,
    rounds: u32,
    family: BackfillFamily,
    incremental: SchedIncremental,
) -> CellResult {
    run_cell_machine(nodes, depth, mode, rounds, family, incremental, false)
}

/// [`run_cell_incremental`] with an explicit machine axis — `hetero`
/// runs the same churn on a three-class [`MachineMix::Hetero3`] cluster,
/// driving the per-class free sets and timelines on every pass. The
/// churn jobs stay class-unconstrained, so the pass-elision memos keep
/// firing and the measured contrast is the per-class bookkeeping alone.
pub fn run_cell_machine(
    nodes: u32,
    depth: u32,
    mode: SchedIndex,
    rounds: u32,
    family: BackfillFamily,
    incremental: SchedIncremental,
    hetero: bool,
) -> CellResult {
    run_cell_faulty(
        nodes,
        depth,
        mode,
        rounds,
        family,
        incremental,
        hetero,
        false,
    )
}

/// [`run_cell_machine`] with an explicit fault axis — `faulty` injects a
/// deterministic node failure every 10th round (kill-and-requeue when
/// the node was serving a job) and repairs it five rounds later, so at
/// most one node is down at a time and the machine's capacity recovers.
/// The gate reads this cell against its calm twin: failure handling —
/// incremental capacity invalidation, requeue resubmission, repair
/// wake-up — must not collapse the scheduler hot path.
#[allow(clippy::too_many_arguments)]
pub fn run_cell_faulty(
    nodes: u32,
    depth: u32,
    mode: SchedIndex,
    rounds: u32,
    family: BackfillFamily,
    incremental: SchedIncremental,
    hetero: bool,
    faulty: bool,
) -> CellResult {
    let mut cfg = SlurmConfig::for_cluster(nodes);
    cfg.sched_index = mode;
    cfg.backfill_family = family;
    cfg.sched_incremental = incremental;
    // Steady-state churn would grow the terminal-record table without
    // bound; the streaming driver prunes it, so the bench does too.
    cfg.retain_completed = false;
    let cluster = if hetero {
        Cluster::with_classes(MachineMix::Hetero3.table(nodes, 16))
    } else {
        Cluster::new(nodes, 16)
    };
    let mut s = Slurm::new(cluster, cfg);

    let width = (nodes / 64).max(1);
    let mut running: VecDeque<_> = VecDeque::new();
    for i in 0..nodes / width {
        s.submit(
            JobRequest::rigid(format!("run{i}"), width)
                .with_expected_runtime(Span::from_secs(600 + (u64::from(i) * 37) % 600)),
            SimTime::ZERO,
        );
    }
    for start in s.schedule(SimTime::ZERO) {
        running.push_back(start.id);
    }
    for i in 0..depth {
        s.submit(
            JobRequest::rigid(format!("pend{i}"), 1 + (i * 7) % (width * 4))
                .with_expected_runtime(Span::from_secs(120 + (u64::from(i) * 13) % 900)),
            SimTime::from_secs(1 + u64::from(i) % 100),
        );
    }

    let mut events: u64 = 0;
    let mut jobs_started: u64 = 0;
    let mut pending = u64::from(depth);
    let mut peak = pending;
    let mut down: VecDeque<dmr_cluster::NodeId> = VecDeque::new();
    let t0 = Instant::now();
    for r in 0..rounds {
        let now = SimTime::from_secs(1000 + u64::from(r));
        if let Some(id) = running.pop_front() {
            s.complete(id, now);
            events += 1;
        }
        if faulty && r % 10 == 3 {
            // Deterministic victim walk; most hits land on busy nodes
            // (the machine runs full), exercising kill-and-requeue.
            let node = dmr_cluster::NodeId((r / 10 * 17 + 1) % nodes);
            match s.fail_node(node) {
                dmr_cluster::FailOutcome::Busy(owner) => {
                    let victim = dmr_slurm::JobId(owner);
                    running.retain(|&id| id != victim);
                    if s.requeue_failed(victim, now).is_some() {
                        pending += 1;
                    }
                    down.push_back(node);
                    events += 1;
                }
                dmr_cluster::FailOutcome::Idle => {
                    down.push_back(node);
                    events += 1;
                }
                dmr_cluster::FailOutcome::Skipped => {}
            }
        }
        if faulty && r % 10 == 8 {
            if let Some(node) = down.pop_front() {
                s.repair_node(node);
                events += 1;
            }
        }
        let i = depth + r;
        s.submit(
            JobRequest::rigid(format!("churn{r}"), 1 + (i * 7) % (width * 4))
                .with_expected_runtime(Span::from_secs(120 + (u64::from(i) * 13) % 900)),
            now,
        );
        pending += 1;
        events += 1;
        events += 1; // the scheduling pass itself
        for start in s.schedule(now) {
            running.push_back(start.id);
            jobs_started += 1;
            pending -= 1;
            events += 1;
        }
        if r % 30 == 29 {
            events += 1;
            for start in s.backfill_pass(now) {
                running.push_back(start.id);
                jobs_started += 1;
                pending -= 1;
                events += 1;
            }
        }
        peak = peak.max(pending);
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let stats = s.incremental_stats();

    CellResult {
        nodes,
        queue_depth: depth,
        mode: match mode {
            SchedIndex::Arena => "arena",
            SchedIndex::Indexed => "indexed",
            SchedIndex::ScanReference => "scan",
        },
        backfill: family.label(),
        incremental: match incremental {
            SchedIncremental::On => "on",
            SchedIncremental::Off => "off",
        },
        machine: if hetero { "hetero3" } else { "uniform" },
        faults: if faulty { "on" } else { "off" },
        rounds,
        events,
        jobs_started,
        peak_queue_depth: peak,
        passes_run: stats.sched_passes_run + stats.backfill_passes_run,
        passes_elided: stats.sched_passes_elided + stats.backfill_passes_elided,
        elapsed_s,
    }
}

/// Measurement repeats per cell; the fastest repeat is kept. The timed
/// churn sections are tens of milliseconds, short enough that
/// scheduler-interference noise alone used to swing the CI speedup gate
/// across its bar — and interference is one-sided (contention only ever
/// slows a run down), so best-of-N converges on the machine's true rate.
/// Pass elision made the timed sections shorter still, which is why the
/// full run now takes the same repeat count instead of a single sample.
pub fn repeats(_smoke: bool) -> u32 {
    5
}

/// Measures every config of one grid cell, *rep-major*: each repeat
/// sweeps all configs once before any config repeats. Every acceptance
/// gate is a ratio between configs of the same cell (arena/indexed,
/// conservative/easy1, on/off, hetero/uniform); a config-major order
/// would let a burst of machine interference land entirely on one side
/// of a ratio and swing the gate, while interleaving spreads any burst
/// across all sides. Each repeat also *rotates* its starting config:
/// slow-changing bias (frequency scaling, a neighbour spinning up)
/// penalises whatever runs late in a sweep, and without rotation the
/// same config sits in the same slot every repeat — a bias best-of-N
/// can never average away, which showed up as the last-listed hetero
/// cell reading 15-25% slow against its uniform twin measured first.
/// The fastest repeat per config is kept.
fn best_cells(
    nodes: u32,
    depth: u32,
    rounds: u32,
    configs: &[(SchedIndex, BackfillFamily, SchedIncremental, bool, bool)],
    reps: u32,
) -> Vec<CellResult> {
    let mut best: Vec<Option<CellResult>> = configs.iter().map(|_| None).collect();
    for rep in 0..reps as usize {
        for k in 0..configs.len() {
            let idx = (k + rep) % configs.len();
            let (mode, family, incremental, hetero, faulty) = configs[idx];
            let next = run_cell_faulty(
                nodes,
                depth,
                mode,
                rounds,
                family,
                incremental,
                hetero,
                faulty,
            );
            match &mut best[idx] {
                Some(b) => {
                    debug_assert_eq!(next.events, b.events, "repeats diverged");
                    if next.elapsed_s < b.elapsed_s {
                        *b = next;
                    }
                }
                None => best[idx] = Some(next),
            }
        }
    }
    best.into_iter().flatten().collect()
}

/// Runs the whole grid (every [`modes_for`] mode per cell), reporting
/// progress through `progress` (one line per finished cell; `repro`
/// points this at stderr). The backfill-axis cells additionally measure
/// the incremental axis: EASY-1 and conservative re-run with
/// [`SchedIncremental::Off`], so each headline cell carries an on/off
/// pair (the on cells are the regular grid / backfill-axis cells).
pub fn run_grid(smoke: bool, mut progress: impl FnMut(&CellResult)) -> Vec<CellResult> {
    let rounds = rounds(smoke);
    let reps = repeats(smoke);
    let axis = backfill_axis_cells(smoke);
    let mut out = Vec::new();
    for (nodes, depth) in grid(smoke) {
        let mut configs: Vec<(SchedIndex, BackfillFamily, SchedIncremental, bool, bool)> =
            modes_for(nodes, depth)
                .into_iter()
                .map(|mode| {
                    (
                        mode,
                        BackfillFamily::easy(1),
                        SchedIncremental::On,
                        false,
                        false,
                    )
                })
                .collect();
        if axis.contains(&(nodes, depth)) {
            configs.extend(backfill_axis_families().into_iter().map(|family| {
                (
                    SchedIndex::Arena,
                    family,
                    SchedIncremental::On,
                    false,
                    false,
                )
            }));
            configs.extend(
                [BackfillFamily::easy(1), BackfillFamily::Conservative]
                    .into_iter()
                    .map(|family| {
                        (
                            SchedIndex::Arena,
                            family,
                            SchedIncremental::Off,
                            false,
                            false,
                        )
                    }),
            );
            // The machine axis: the same arena EASY-1 churn on the
            // three-class cluster — the "per-class bookkeeping does not
            // collapse the hot path" gate reads this cell against its
            // uniform twin, so it is inserted *adjacent* to that twin:
            // the gate ratio then compares back-to-back measurements
            // rather than the two ends of a sweep.
            configs.insert(
                1,
                (
                    SchedIndex::Arena,
                    BackfillFamily::easy(1),
                    SchedIncremental::On,
                    true,
                    false,
                ),
            );
            // The fault axis: the same arena EASY-1 churn under periodic
            // node failure and repair — adjacent to the calm twin for
            // the same back-to-back-measurement reason.
            configs.insert(
                2,
                (
                    SchedIndex::Arena,
                    BackfillFamily::easy(1),
                    SchedIncremental::On,
                    false,
                    true,
                ),
            );
        }
        for cell in best_cells(nodes, depth, rounds, &configs, reps) {
            progress(&cell);
            out.push(cell);
        }
    }
    out
}

/// Full-precision JSON number. The old `{v:.3}` rendering truncated
/// sub-millisecond `elapsed_s` values to `0.000`, destroying every
/// derived rate for fast cells; Rust's shortest-roundtrip `Display` for
/// `f64` never uses an exponent, so the output is a valid JSON number
/// that parses back to the identical bits.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

/// Renders one grid run as a v2 *run* object (the element
/// [`append_run`] splices into the trajectory document).
///
/// The headline block compares the arena and indexed paths on the last
/// grid cell (the 65,536-node / 100k-pending scenario):
/// `speedup_vs_indexed` is the events-per-second ratio the acceptance
/// gate reads.
pub fn render_run(cells: &[CellResult], smoke: bool, label: &str) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"label\": \"{}\",", label.replace('"', "'"));
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"nodes\": {}, \"queue_depth\": {}, \"mode\": \"{}\", \"backfill\": \"{}\", \
             \"incremental\": \"{}\", \"machine\": \"{}\", \"faults\": \"{}\", \"rounds\": {}, \
             \"events\": {}, \"jobs_started\": {}, \"peak_queue_depth\": {}, \
             \"passes_run\": {}, \"passes_elided\": {}, \
             \"elapsed_s\": {}, \"events_per_sec\": {}, \"jobs_per_sec\": {}}}",
            c.nodes,
            c.queue_depth,
            c.mode,
            c.backfill,
            c.incremental,
            c.machine,
            c.faults,
            c.rounds,
            c.events,
            c.jobs_started,
            c.peak_queue_depth,
            c.passes_run,
            c.passes_elided,
            json_f64(c.elapsed_s),
            json_f64(c.events_per_sec()),
            json_f64(c.jobs_per_sec()),
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let headline = headline(cells);
    let _ = write!(
        out,
        "  \"headline\": {{\"nodes\": {}, \"queue_depth\": {}, \
         \"arena_events_per_sec\": {}, \"indexed_events_per_sec\": {}, \
         \"speedup_vs_indexed\": {}}}",
        headline.0,
        headline.1,
        json_f64(headline.2),
        json_f64(headline.3),
        json_f64(headline.4),
    );
    if let Some(axis) = backfill_headline(cells) {
        let _ = write!(
            out,
            ",\n  \"backfill_axis\": {{\"nodes\": {}, \"queue_depth\": {}, \
             \"easy1_events_per_sec\": {}, \"conservative_events_per_sec\": {}, \
             \"conservative_vs_easy1\": {}}}",
            axis.0,
            axis.1,
            json_f64(axis.2),
            json_f64(axis.3),
            json_f64(axis.4),
        );
    }
    if let Some(axis) = incremental_headline(cells) {
        // Rendered *after* backfill_axis on purpose: it repeats the
        // conservative_vs_easy1 key (computed from the same On cells, so
        // the values agree) and the rsplit scrapers read the last
        // occurrence — old and new gates see the same number.
        let _ = write!(
            out,
            ",\n  \"incremental_axis\": {{\"nodes\": {}, \"queue_depth\": {}, \
             \"easy1_on_events_per_sec\": {}, \"easy1_off_events_per_sec\": {}, \
             \"easy1_on_vs_off\": {}, \
             \"conservative_on_events_per_sec\": {}, \"conservative_off_events_per_sec\": {}, \
             \"conservative_on_vs_off\": {}, \
             \"conservative_vs_easy1\": {}, \"elision_rate\": {}}}",
            axis.nodes,
            axis.queue_depth,
            json_f64(axis.easy1_on),
            json_f64(axis.easy1_off),
            json_f64(ratio(axis.easy1_on, axis.easy1_off)),
            json_f64(axis.conservative_on),
            json_f64(axis.conservative_off),
            json_f64(ratio(axis.conservative_on, axis.conservative_off)),
            json_f64(ratio(axis.conservative_on, axis.easy1_on)),
            json_f64(axis.elision_rate),
        );
    }
    if let Some(axis) = hetero_headline(cells) {
        let _ = write!(
            out,
            ",\n  \"hetero_axis\": {{\"nodes\": {}, \"queue_depth\": {}, \
             \"uniform_events_per_sec\": {}, \"hetero_events_per_sec\": {}, \
             \"hetero_vs_uniform\": {}}}",
            axis.0,
            axis.1,
            json_f64(axis.2),
            json_f64(axis.3),
            json_f64(axis.4),
        );
    }
    if let Some(axis) = fault_headline(cells) {
        let _ = write!(
            out,
            ",\n  \"fault_axis\": {{\"nodes\": {}, \"queue_depth\": {}, \
             \"calm_events_per_sec\": {}, \"faulty_events_per_sec\": {}, \
             \"faulty_vs_calm\": {}}}",
            axis.0,
            axis.1,
            json_f64(axis.2),
            json_f64(axis.3),
            json_f64(axis.4),
        );
    }
    out.push_str("\n}");
    out
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// `(nodes, depth, arena ev/s, indexed ev/s, speedup)` of the last cell.
/// The backfill-depth axis cells (deeper-than-EASY-1 families) are not
/// headline candidates — the headline compares hot-path layers on the
/// paper's Slurm configuration.
fn headline(cells: &[CellResult]) -> (u32, u32, f64, f64, f64) {
    let Some(arena) = cells.iter().rev().find(|c| {
        c.mode == "arena"
            && c.backfill == "easy1"
            && c.incremental == "on"
            && c.machine == "uniform"
            && c.faults == "off"
    }) else {
        return (0, 0, 0.0, 0.0, 0.0);
    };
    let indexed = cells.iter().rev().find(|c| {
        c.mode == "indexed"
            && c.incremental == "on"
            && c.machine == "uniform"
            && c.faults == "off"
            && c.nodes == arena.nodes
            && c.queue_depth == arena.queue_depth
    });
    let Some(indexed) = indexed else {
        return (
            arena.nodes,
            arena.queue_depth,
            arena.events_per_sec(),
            0.0,
            0.0,
        );
    };
    let speedup = if indexed.events_per_sec() > 0.0 {
        arena.events_per_sec() / indexed.events_per_sec()
    } else {
        0.0
    };
    (
        arena.nodes,
        arena.queue_depth,
        arena.events_per_sec(),
        indexed.events_per_sec(),
        speedup,
    )
}

/// `(nodes, depth, easy1 ev/s, conservative ev/s, ratio)` of the last
/// backfill-axis cell — the "deep backfill does not collapse" gate reads
/// the ratio. `None` when the run measured no conservative cell.
fn backfill_headline(cells: &[CellResult]) -> Option<(u32, u32, f64, f64, f64)> {
    let cons = cells.iter().rev().find(|c| {
        c.mode == "arena"
            && c.backfill == "conservative"
            && c.incremental == "on"
            && c.machine == "uniform"
            && c.faults == "off"
    })?;
    let easy1 = cells.iter().rev().find(|c| {
        c.mode == "arena"
            && c.backfill == "easy1"
            && c.incremental == "on"
            && c.machine == "uniform"
            && c.faults == "off"
            && c.nodes == cons.nodes
            && c.queue_depth == cons.queue_depth
    })?;
    let ratio = if easy1.events_per_sec() > 0.0 {
        cons.events_per_sec() / easy1.events_per_sec()
    } else {
        0.0
    };
    Some((
        cons.nodes,
        cons.queue_depth,
        easy1.events_per_sec(),
        cons.events_per_sec(),
        ratio,
    ))
}

/// The incremental-axis headline: the last cell measured with
/// [`SchedIncremental::Off`] paired with its On twin, for EASY-1 and
/// conservative.
struct IncrementalAxis {
    nodes: u32,
    queue_depth: u32,
    easy1_on: f64,
    easy1_off: f64,
    conservative_on: f64,
    conservative_off: f64,
    /// Elision rate of the EASY-1 arena *On* cell — the fraction of
    /// passes the memos answered in O(1).
    elision_rate: f64,
}

fn incremental_headline(cells: &[CellResult]) -> Option<IncrementalAxis> {
    let off = |backfill: &str| {
        cells.iter().rev().find(|c| {
            c.mode == "arena"
                && c.backfill == backfill
                && c.incremental == "off"
                && c.machine == "uniform"
                && c.faults == "off"
        })
    };
    let easy_off = off("easy1")?;
    let cons_off = off("conservative")?;
    let on = |backfill: &str| {
        cells.iter().rev().find(|c| {
            c.mode == "arena"
                && c.backfill == backfill
                && c.incremental == "on"
                && c.machine == "uniform"
                && c.faults == "off"
                && c.nodes == easy_off.nodes
                && c.queue_depth == easy_off.queue_depth
        })
    };
    let easy_on = on("easy1")?;
    let cons_on = on("conservative")?;
    Some(IncrementalAxis {
        nodes: easy_off.nodes,
        queue_depth: easy_off.queue_depth,
        easy1_on: easy_on.events_per_sec(),
        easy1_off: easy_off.events_per_sec(),
        conservative_on: cons_on.events_per_sec(),
        conservative_off: cons_off.events_per_sec(),
        elision_rate: easy_on.elision_rate(),
    })
}

/// `(nodes, depth, uniform ev/s, hetero ev/s, ratio)` of the last
/// machine-axis cell — the "per-class bookkeeping does not collapse the
/// hot path" gate reads the ratio (gated at ≥ 0.9 by `repro`). `None`
/// when the run measured no heterogeneous cell.
fn hetero_headline(cells: &[CellResult]) -> Option<(u32, u32, f64, f64, f64)> {
    let hetero = cells.iter().rev().find(|c| {
        c.mode == "arena"
            && c.backfill == "easy1"
            && c.incremental == "on"
            && c.machine == "hetero3"
            && c.faults == "off"
    })?;
    let uniform = cells.iter().rev().find(|c| {
        c.mode == "arena"
            && c.backfill == "easy1"
            && c.incremental == "on"
            && c.machine == "uniform"
            && c.faults == "off"
            && c.nodes == hetero.nodes
            && c.queue_depth == hetero.queue_depth
    })?;
    Some((
        hetero.nodes,
        hetero.queue_depth,
        uniform.events_per_sec(),
        hetero.events_per_sec(),
        ratio(hetero.events_per_sec(), uniform.events_per_sec()),
    ))
}

/// `(nodes, depth, calm ev/s, faulty ev/s, ratio)` of the last
/// fault-axis cell — the "failure handling does not collapse the hot
/// path" gate reads the ratio (gated at ≥ 0.7 by `repro`). `None` when
/// the run measured no faulty cell.
fn fault_headline(cells: &[CellResult]) -> Option<(u32, u32, f64, f64, f64)> {
    let faulty = cells.iter().rev().find(|c| {
        c.mode == "arena"
            && c.backfill == "easy1"
            && c.incremental == "on"
            && c.machine == "uniform"
            && c.faults == "on"
    })?;
    let calm = cells.iter().rev().find(|c| {
        c.mode == "arena"
            && c.backfill == "easy1"
            && c.incremental == "on"
            && c.machine == "uniform"
            && c.faults == "off"
            && c.nodes == faulty.nodes
            && c.queue_depth == faulty.queue_depth
    })?;
    Some((
        faulty.nodes,
        faulty.queue_depth,
        calm.events_per_sec(),
        faulty.events_per_sec(),
        ratio(faulty.events_per_sec(), calm.events_per_sec()),
    ))
}

/// Splices `run` (a [`render_run`] object) into `existing`, returning
/// the new document:
///
/// * no existing document → a fresh v2 document with one run;
/// * an existing v1 snapshot → migrated **byte-verbatim** as run 0, the
///   new run appended after it;
/// * an existing v2 trajectory → the new run appended; every byte before
///   the document suffix is preserved exactly.
pub fn append_run(existing: Option<&str>, run: &str) -> Result<String, String> {
    let base = match existing.map(str::trim_end) {
        None | Some("") => return Ok(format!("{DOC_PREFIX}{run}{DOC_SUFFIX}")),
        Some(_) => {
            let doc = existing.expect("checked above");
            // The v2-trajectory test must come first: a trajectory that
            // *contains* a migrated v1 run as run 0 still carries the v1
            // schema marker in its bytes, and treating it as a legacy
            // snapshot would re-wrap the whole document on every append.
            if doc.starts_with(DOC_PREFIX) {
                let Some(stripped) = doc.strip_suffix(DOC_SUFFIX) else {
                    return Err("existing document has an unrecognised suffix".into());
                };
                return Ok(format!("{stripped},\n{run}{DOC_SUFFIX}"));
            } else if doc.contains(SCHEMA_V1) {
                // Legacy single-run snapshot: the whole object becomes
                // run 0, its bytes untouched.
                doc.trim_end().to_string()
            } else {
                return Err("existing document is not a v2 trajectory".into());
            }
        }
    };
    Ok(format!("{DOC_PREFIX}{base},\n{run}{DOC_SUFFIX}"))
}

/// Number of runs in a rendered document (label count; the migrated v1
/// run carries no label, so it is counted via its v1 schema marker).
pub fn run_count(doc: &str) -> usize {
    doc.matches("\"label\"").count() + doc.matches(SCHEMA_V1).count()
}

/// Extracts the **last** run's `headline.speedup_vs_indexed` from a
/// rendered document — the one scraper shared by the schema gate and the
/// `repro` acceptance check, so the key format lives in exactly one
/// place.
pub fn headline_speedup(doc: &str) -> Option<f64> {
    let (_, rest) = doc.rsplit_once("\"speedup_vs_indexed\": ")?;
    rest.split(['}', ','])
        .next()
        .and_then(|v| v.trim().parse::<f64>().ok())
}

/// Extracts the **last** run's `backfill_axis.conservative_vs_easy1`
/// ratio — the deep-backfill acceptance gate. `None` when no run carried
/// the backfill-depth axis (every pre-axis document).
pub fn backfill_ratio(doc: &str) -> Option<f64> {
    let (_, rest) = doc.rsplit_once("\"conservative_vs_easy1\": ")?;
    rest.split(['}', ','])
        .next()
        .and_then(|v| v.trim().parse::<f64>().ok())
}

/// Extracts the **last** run's `hetero_axis.hetero_vs_uniform` ratio —
/// the heterogeneous-machine acceptance gate (per-class free sets and
/// timelines must keep the arena path within 0.9x of the uniform cell).
/// `None` when no run carried the machine axis (every pre-hetero
/// document).
pub fn hetero_ratio(doc: &str) -> Option<f64> {
    let (_, rest) = doc.rsplit_once("\"hetero_vs_uniform\": ")?;
    rest.split(['}', ','])
        .next()
        .and_then(|v| v.trim().parse::<f64>().ok())
}

/// Extracts the **last** run's `fault_axis.faulty_vs_calm` ratio — the
/// fault-injection acceptance gate (kill-and-requeue plus repair churn
/// must keep the arena path within 0.7x of the calm cell). `None` when
/// no run carried the fault axis (every pre-fault document).
pub fn fault_ratio(doc: &str) -> Option<f64> {
    let (_, rest) = doc.rsplit_once("\"faulty_vs_calm\": ")?;
    rest.split(['}', ','])
        .next()
        .and_then(|v| v.trim().parse::<f64>().ok())
}

/// Extracts the **last** run's `incremental_axis.elision_rate` — the
/// fraction of headline-cell passes the memos answered in O(1). `None`
/// for pre-incremental documents.
pub fn elision_rate(doc: &str) -> Option<f64> {
    let (_, rest) = doc.rsplit_once("\"elision_rate\": ")?;
    rest.split(['}', ','])
        .next()
        .and_then(|v| v.trim().parse::<f64>().ok())
}

/// One cell parsed back out of a trajectory document — the cross-run
/// comparison view `repro`'s regression gates read.
///
/// Cells from pre-axis runs carry defaults for the keys their renderer
/// predates (`backfill` → `"easy1"`, `incremental` → `"on"`), and the
/// lossy v1 `{:.3}` rendering is repaired on parse: a stored
/// `"elapsed_s": 0.000` next to a non-zero `events_per_sec` becomes
/// `events / events_per_sec`, so cross-run reports never divide by zero.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryCell {
    pub nodes: u32,
    pub queue_depth: u32,
    pub mode: String,
    pub backfill: String,
    pub incremental: String,
    /// Machine axis (`"uniform"` / `"hetero3"`); pre-hetero cells carry
    /// the `"uniform"` default.
    pub machine: String,
    /// Fault axis (`"off"` / `"on"`); pre-fault cells carry the `"off"`
    /// default.
    pub faults: String,
    pub events: u64,
    /// Wall-clock seconds, repaired from `events / events_per_sec` when
    /// the stored value is the lossy v1 zero.
    pub elapsed_s: f64,
    pub events_per_sec: f64,
}

/// The byte range of the run labelled `label` in a trajectory document:
/// from its `"label"` line to the next run's (or the document's end).
/// The migrated v1 run carries no label and is addressed as `"v1"`.
pub fn run_fragment<'a>(doc: &'a str, label: &'a str) -> Option<&'a str> {
    if label == "v1" {
        let start = doc.find(SCHEMA_V1)?;
        let end = doc[start..]
            .find("\"label\"")
            .map_or(doc.len(), |i| start + i);
        return Some(&doc[start..end]);
    }
    let pat = format!("\"label\": \"{label}\"");
    let start = doc.find(&pat)?;
    let rest = &doc[start + pat.len()..];
    let end = rest.find("\"label\"").map_or(rest.len(), |i| i);
    Some(&rest[..end])
}

fn cell_value<'a>(cell: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let (_, rest) = cell.split_once(&pat)?;
    rest.split([',', '}'])
        .next()
        .map(|v| v.trim().trim_matches('"'))
}

/// Parses every measurement cell in a document fragment (typically one
/// [`run_fragment`]), applying the pre-axis defaults and the v1
/// zero-elapsed repair described on [`TrajectoryCell`]. Headline/axis
/// objects are skipped (they carry no `mode`).
pub fn trajectory_cells(fragment: &str) -> Vec<TrajectoryCell> {
    let mut out = Vec::new();
    for piece in fragment.split("{\"nodes\": ").skip(1) {
        let cell = piece.split('}').next().unwrap_or("");
        let Some(mode) = cell_value(cell, "mode") else {
            continue;
        };
        let (Some(depth), Some(events), Some(elapsed), Some(eps)) = (
            cell_value(cell, "queue_depth").and_then(|v| v.parse::<u32>().ok()),
            cell_value(cell, "events").and_then(|v| v.parse::<u64>().ok()),
            cell_value(cell, "elapsed_s").and_then(|v| v.parse::<f64>().ok()),
            cell_value(cell, "events_per_sec").and_then(|v| v.parse::<f64>().ok()),
        ) else {
            continue;
        };
        let nodes = piece
            .split([',', '}'])
            .next()
            .and_then(|v| v.trim().parse::<u32>().ok());
        let Some(nodes) = nodes else { continue };
        let elapsed_s = if elapsed == 0.0 && eps > 0.0 {
            events as f64 / eps
        } else {
            elapsed
        };
        out.push(TrajectoryCell {
            nodes,
            queue_depth: depth,
            mode: mode.to_string(),
            backfill: cell_value(cell, "backfill").unwrap_or("easy1").to_string(),
            incremental: cell_value(cell, "incremental").unwrap_or("on").to_string(),
            machine: cell_value(cell, "machine").unwrap_or("uniform").to_string(),
            faults: cell_value(cell, "faults").unwrap_or("off").to_string(),
            events,
            elapsed_s,
            events_per_sec: eps,
        });
    }
    out
}

/// Looks up one cell of one labelled run — the cross-run regression
/// gates' accessor (`repro` compares the fresh headline cell against the
/// same cell of a named prior run).
pub fn run_cell_lookup(
    doc: &str,
    label: &str,
    nodes: u32,
    depth: u32,
    mode: &str,
    backfill: &str,
    incremental: &str,
) -> Option<TrajectoryCell> {
    trajectory_cells(run_fragment(doc, label)?)
        .into_iter()
        .find(|c| {
            c.nodes == nodes
                && c.queue_depth == depth
                && c.mode == mode
                && c.backfill == backfill
                && c.incremental == incremental
                && c.machine == "uniform"
                && c.faults == "off"
        })
}

/// Structural schema gate for a rendered document: required keys present,
/// braces balanced, a parseable headline speedup on the last run.
/// Deliberately minimal — it guards the CI artifact against shape
/// regressions, not against perf regressions (those need comparable
/// hardware).
pub fn validate_bench_json(doc: &str) -> Result<(), String> {
    for key in [
        "\"schema\"",
        "\"runs\"",
        "\"label\"",
        "\"smoke\"",
        "\"cells\"",
        "\"headline\"",
        "\"events_per_sec\"",
        "\"jobs_per_sec\"",
        "\"peak_queue_depth\"",
        "\"speedup_vs_indexed\"",
    ] {
        if !doc.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    if !doc.starts_with(DOC_PREFIX) {
        return Err(format!("document does not open a {SCHEMA} trajectory"));
    }
    let opens = doc.matches('{').count();
    let closes = doc.matches('}').count();
    if opens != closes {
        return Err(format!("unbalanced braces: {opens} vs {closes}"));
    }
    let speedup = headline_speedup(doc).ok_or("speedup_vs_indexed is not a number")?;
    if !speedup.is_finite() || speedup < 0.0 {
        return Err(format!("speedup_vs_indexed {speedup} out of range"));
    }
    // The backfill axis is optional (pre-axis runs lack it) but must be
    // well-formed where present.
    if doc.contains("\"backfill_axis\"") {
        let ratio = backfill_ratio(doc).ok_or("conservative_vs_easy1 is not a number")?;
        if !ratio.is_finite() || ratio < 0.0 {
            return Err(format!("conservative_vs_easy1 {ratio} out of range"));
        }
    }
    // Same for the incremental axis (pre-incremental runs lack it).
    if doc.contains("\"incremental_axis\"") {
        let rate = elision_rate(doc).ok_or("elision_rate is not a number")?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("elision_rate {rate} out of range"));
        }
    }
    // And the machine axis (pre-hetero runs lack it).
    if doc.contains("\"hetero_axis\"") {
        let ratio = hetero_ratio(doc).ok_or("hetero_vs_uniform is not a number")?;
        if !ratio.is_finite() || ratio < 0.0 {
            return Err(format!("hetero_vs_uniform {ratio} out of range"));
        }
    }
    // And the fault axis (pre-fault runs lack it).
    if doc.contains("\"fault_axis\"") {
        let ratio = fault_ratio(doc).ok_or("faulty_vs_calm is not a number")?;
        if !ratio.is_finite() || ratio < 0.0 {
            return Err(format!("faulty_vs_calm {ratio} out of range"));
        }
    }
    Ok(())
}

/// Runs the grid and renders one run object — what `repro --bench-json`
/// splices into `BENCH_sched.json` via [`append_run`].
pub fn bench_run(smoke: bool, label: &str, progress: impl FnMut(&CellResult)) -> String {
    render_run(&run_grid(smoke, progress), smoke, label)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cells() -> Vec<CellResult> {
        [
            SchedIndex::Arena,
            SchedIndex::Indexed,
            SchedIndex::ScanReference,
        ]
        .into_iter()
        .map(|m| run_cell(16, 20, m, 5))
        .collect()
    }

    fn tiny_doc() -> String {
        append_run(None, &render_run(&tiny_cells(), true, "t0")).unwrap()
    }

    #[test]
    fn identical_operation_sequences_in_all_modes() {
        let cells = tiny_cells();
        for c in &cells[1..] {
            assert_eq!(cells[0].events, c.events, "{} diverged", c.mode);
            assert_eq!(cells[0].jobs_started, c.jobs_started, "{}", c.mode);
            assert_eq!(cells[0].peak_queue_depth, c.peak_queue_depth, "{}", c.mode);
        }
    }

    #[test]
    fn rendered_document_validates() {
        let doc = tiny_doc();
        validate_bench_json(&doc).unwrap();
        assert!(doc.contains("\"mode\": \"arena\""));
        assert!(doc.contains("\"mode\": \"indexed\""));
        assert!(doc.contains("\"mode\": \"scan\""));
        assert_eq!(run_count(&doc), 1);
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let doc = tiny_doc();
        assert!(validate_bench_json(&doc.replace("speedup_vs_indexed", "nope")).is_err());
        assert!(
            validate_bench_json(&doc[..doc.len() - 3]).is_err(),
            "unbalanced"
        );
        assert!(validate_bench_json("{}").is_err());
    }

    #[test]
    fn append_preserves_prior_runs_byte_for_byte() {
        let cells = tiny_cells();
        let doc1 = append_run(None, &render_run(&cells, true, "t0")).unwrap();
        let doc2 = append_run(Some(&doc1), &render_run(&cells, true, "t1")).unwrap();
        let kept = doc1.len() - DOC_SUFFIX.len();
        assert_eq!(&doc2[..kept], &doc1[..kept], "prior bytes rewritten");
        assert_eq!(run_count(&doc2), 2);
        validate_bench_json(&doc2).unwrap();
        // The scraper reads the *last* run's headline.
        assert!(headline_speedup(&doc2).is_some());
    }

    #[test]
    fn append_over_a_migrated_v1_run_does_not_rewrap() {
        // A trajectory that carries the migrated v1 snapshot as run 0
        // still contains the v1 schema marker; appending to it must take
        // the v2 path (extend before the suffix), not wrap the whole
        // document as a new run 0 again.
        let v1 = "{\n  \"schema\": \"dmr-bench-sched/v1\",\n  \"smoke\": false,\n  \
                  \"cells\": [],\n  \"headline\": {\"speedup_vs_scan\": 11.274}\n}\n";
        let doc1 = append_run(Some(v1), &render_run(&tiny_cells(), true, "t1")).unwrap();
        let doc2 = append_run(Some(&doc1), &render_run(&tiny_cells(), true, "t2")).unwrap();
        let kept = doc1.len() - DOC_SUFFIX.len();
        assert_eq!(&doc2[..kept], &doc1[..kept], "prior bytes rewritten");
        assert_eq!(
            doc2.matches(DOC_PREFIX).count(),
            1,
            "document wrapped twice"
        );
        assert_eq!(run_count(&doc2), 3);
        validate_bench_json(&doc2).unwrap();
    }

    #[test]
    fn v1_snapshot_migrates_verbatim_as_run_zero() {
        let v1 = "{\n  \"schema\": \"dmr-bench-sched/v1\",\n  \"smoke\": false,\n  \
                  \"cells\": [],\n  \"headline\": {\"speedup_vs_scan\": 11.274}\n}\n";
        let doc = append_run(Some(v1), &render_run(&tiny_cells(), true, "t1")).unwrap();
        assert!(
            doc.contains(v1.trim_end()),
            "v1 bytes must survive untouched"
        );
        assert_eq!(run_count(&doc), 2);
        validate_bench_json(&doc).unwrap();
    }

    #[test]
    fn elapsed_is_rendered_at_full_precision() {
        // The v1 renderer printed `{v:.3}`, flattening fast cells to
        // `"elapsed_s": 0.000` and zeroing every derived rate.
        assert_eq!(json_f64(0.000123456789), "0.000123456789");
        assert_eq!(json_f64(39645.391), "39645.391");
        assert_eq!(json_f64(f64::NAN), "0");
    }

    #[test]
    fn grid_ends_with_the_headline_cell() {
        for smoke in [true, false] {
            assert_eq!(*grid(smoke).last().unwrap(), (65_536, 100_000));
            // The backfill-depth axis always covers the headline cell.
            assert!(backfill_axis_cells(smoke).contains(&(65_536, 100_000)));
            for cell in backfill_axis_cells(smoke) {
                assert!(grid(smoke).contains(&cell), "axis cell {cell:?} off-grid");
            }
        }
        // The headline cell measures exactly the two gated paths.
        assert_eq!(modes_for(65_536, 100_000).len(), 2);
        assert_eq!(modes_for(64, 100).len(), 3);
    }

    #[test]
    fn backfill_axis_lands_in_the_rendered_run() {
        let mut cells = tiny_cells();
        for family in backfill_axis_families() {
            cells.push(run_cell_family(16, 20, SchedIndex::Arena, 5, family));
        }
        let run = render_run(&cells, true, "axis");
        let doc = append_run(None, &run).unwrap();
        validate_bench_json(&doc).unwrap();
        assert!(doc.contains("\"backfill\": \"easy1\""));
        assert!(doc.contains("\"backfill\": \"easy8\""));
        assert!(doc.contains("\"backfill\": \"easy64\""));
        assert!(doc.contains("\"backfill\": \"conservative\""));
        assert!(doc.contains("\"backfill_axis\""));
        let ratio = backfill_ratio(&doc).expect("axis ratio present");
        assert!(ratio.is_finite() && ratio >= 0.0);
        // The headline still compares the EASY-1 hot paths, not an axis
        // cell that happens to come last.
        assert!(doc.contains("\"speedup_vs_indexed\""));
    }

    #[test]
    fn deeper_families_run_the_same_churn_shape() {
        // Same submission/completion churn in every family; the set of
        // backfilled jobs may legitimately differ (deeper reservations
        // can refuse a start EASY-1 would have allowed), so only the
        // shape is pinned here — cross-mode equality within one family
        // is what identical_operation_sequences_in_all_modes covers.
        let easy1 = run_cell(16, 20, SchedIndex::Arena, 5);
        assert_eq!(easy1.backfill, "easy1");
        for family in backfill_axis_families() {
            let deep = run_cell_family(16, 20, SchedIndex::Arena, 5, family);
            assert_eq!(deep.rounds, easy1.rounds);
            assert_eq!(deep.backfill, family.label());
            assert!(
                deep.events > 0 && deep.jobs_started > 0,
                "{}",
                deep.backfill
            );
        }
    }

    #[test]
    fn pre_axis_documents_still_validate() {
        // A trajectory whose runs predate the backfill axis has no
        // backfill_axis block; the validator must keep accepting it.
        let doc = tiny_doc();
        assert!(!doc.contains("\"backfill_axis\""));
        assert!(!doc.contains("\"incremental_axis\""));
        assert!(!doc.contains("\"hetero_axis\""));
        assert!(!doc.contains("\"fault_axis\""));
        assert_eq!(backfill_ratio(&doc), None);
        assert_eq!(elision_rate(&doc), None);
        assert_eq!(hetero_ratio(&doc), None);
        assert_eq!(fault_ratio(&doc), None);
        validate_bench_json(&doc).unwrap();
    }

    #[test]
    fn incremental_off_runs_the_same_sequence_without_eliding() {
        let on = run_cell(16, 20, SchedIndex::Arena, 5);
        let off = run_cell_incremental(
            16,
            20,
            SchedIndex::Arena,
            5,
            BackfillFamily::easy(1),
            SchedIncremental::Off,
        );
        assert_eq!(on.incremental, "on");
        assert_eq!(off.incremental, "off");
        assert_eq!(on.events, off.events, "on/off decisions diverged");
        assert_eq!(on.jobs_started, off.jobs_started);
        assert_eq!(off.passes_elided, 0, "off must never elide");
        assert!(off.passes_run > 0);
        assert_eq!(off.elision_rate(), 0.0);
    }

    #[test]
    fn incremental_axis_lands_in_the_rendered_run() {
        let mut cells = tiny_cells();
        cells.push(run_cell_family(
            16,
            20,
            SchedIndex::Arena,
            5,
            BackfillFamily::Conservative,
        ));
        for family in [BackfillFamily::easy(1), BackfillFamily::Conservative] {
            cells.push(run_cell_incremental(
                16,
                20,
                SchedIndex::Arena,
                5,
                family,
                SchedIncremental::Off,
            ));
        }
        let doc = append_run(None, &render_run(&cells, true, "axis")).unwrap();
        validate_bench_json(&doc).unwrap();
        assert!(doc.contains("\"incremental_axis\""));
        assert!(doc.contains("\"incremental\": \"off\""));
        assert!(doc.contains("\"passes_elided\""));
        assert!(doc.contains("\"easy1_on_vs_off\""));
        let rate = elision_rate(&doc).expect("elision rate present");
        assert!((0.0..=1.0).contains(&rate));
        // The repeated conservative_vs_easy1 key (the rsplit scraper
        // reads the incremental_axis copy) must agree with the
        // backfill_axis value — both derive from the same On cells.
        let parsed = trajectory_cells(run_fragment(&doc, "axis").unwrap());
        let eps = |backfill: &str, incremental: &str| {
            parsed
                .iter()
                .find(|c| {
                    c.mode == "arena" && c.backfill == backfill && c.incremental == incremental
                })
                .map(|c| c.events_per_sec)
                .unwrap()
        };
        let want = eps("conservative", "on") / eps("easy1", "on");
        let got = backfill_ratio(&doc).unwrap();
        assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0));
    }

    #[test]
    fn hetero_axis_lands_in_the_rendered_run() {
        let mut cells = tiny_cells();
        cells.push(run_cell_machine(
            16,
            20,
            SchedIndex::Arena,
            5,
            BackfillFamily::easy(1),
            SchedIncremental::On,
            true,
        ));
        let doc = append_run(None, &render_run(&cells, true, "hetero")).unwrap();
        validate_bench_json(&doc).unwrap();
        assert!(doc.contains("\"machine\": \"hetero3\""));
        assert!(doc.contains("\"hetero_axis\""));
        let ratio = hetero_ratio(&doc).expect("machine-axis ratio present");
        assert!(ratio.is_finite() && ratio > 0.0);
        // The headline still reads the uniform cells, and the parser
        // carries the machine column through (defaulting old cells).
        assert!(headline_speedup(&doc).is_some());
        let parsed = trajectory_cells(run_fragment(&doc, "hetero").unwrap());
        assert!(parsed.iter().any(|c| c.machine == "hetero3"));
        assert!(parsed.iter().any(|c| c.machine == "uniform"));
        // Cross-run lookup stays pinned to the uniform twin.
        let cell = run_cell_lookup(&doc, "hetero", 16, 20, "arena", "easy1", "on").unwrap();
        assert_eq!(cell.machine, "uniform");
    }

    #[test]
    fn fault_axis_lands_in_the_rendered_run() {
        let mut cells = tiny_cells();
        cells.push(run_cell_faulty(
            16,
            20,
            SchedIndex::Arena,
            50,
            BackfillFamily::easy(1),
            SchedIncremental::On,
            false,
            true,
        ));
        let doc = append_run(None, &render_run(&cells, true, "faults")).unwrap();
        validate_bench_json(&doc).unwrap();
        assert!(doc.contains("\"faults\": \"on\""));
        assert!(doc.contains("\"fault_axis\""));
        let ratio = fault_ratio(&doc).expect("fault-axis ratio present");
        assert!(ratio.is_finite() && ratio > 0.0);
        // The headline still reads the calm cells, and the parser carries
        // the fault column through (defaulting old cells to "off").
        assert!(headline_speedup(&doc).is_some());
        let parsed = trajectory_cells(run_fragment(&doc, "faults").unwrap());
        assert!(parsed.iter().any(|c| c.faults == "on"));
        assert!(parsed.iter().any(|c| c.faults == "off"));
        // Cross-run lookup stays pinned to the calm twin.
        let cell = run_cell_lookup(&doc, "faults", 16, 20, "arena", "easy1", "on").unwrap();
        assert_eq!(cell.faults, "off");
    }

    #[test]
    fn faulty_churn_requeues_and_survives() {
        // Enough rounds for several failure/repair cycles on the tiny
        // cell; the run must keep starting jobs and stay deterministic.
        let a = run_cell_faulty(
            16,
            20,
            SchedIndex::Arena,
            50,
            BackfillFamily::easy(1),
            SchedIncremental::On,
            false,
            true,
        );
        assert_eq!(a.faults, "on");
        assert!(a.events > 0 && a.jobs_started > 0);
        let b = run_cell_faulty(
            16,
            20,
            SchedIndex::Arena,
            50,
            BackfillFamily::easy(1),
            SchedIncremental::On,
            false,
            true,
        );
        assert_eq!(a.events, b.events, "faulty churn nondeterministic");
        assert_eq!(a.jobs_started, b.jobs_started);
        // The injection actually changes the schedule vs the calm twin.
        let calm = run_cell(16, 20, SchedIndex::Arena, 50);
        assert_ne!(a.events, calm.events, "faults were a no-op");
    }

    #[test]
    fn hetero_churn_makes_progress_on_three_classes() {
        let cell = run_cell_machine(
            16,
            20,
            SchedIndex::Arena,
            5,
            BackfillFamily::easy(1),
            SchedIncremental::On,
            true,
        );
        assert_eq!(cell.machine, "hetero3");
        assert!(cell.events > 0 && cell.jobs_started > 0);
    }

    #[test]
    fn trajectory_parser_repairs_the_lossy_v1_elapsed() {
        // A migrated v1 cell: `{v:.3}` flattened a sub-millisecond
        // elapsed to 0.000 while events_per_sec kept the real rate.
        let v1 = "{\n  \"schema\": \"dmr-bench-sched/v1\",\n  \"smoke\": false,\n  \"cells\": [\n    \
                  {\"nodes\": 64, \"queue_depth\": 100, \"mode\": \"indexed\", \"rounds\": 300, \
                  \"events\": 1172, \"jobs_started\": 262, \"peak_queue_depth\": 141, \
                  \"elapsed_s\": 0.000, \"events_per_sec\": 2500058.662, \"jobs_per_sec\": 558886.834}\n  ],\n  \
                  \"headline\": {\"speedup_vs_scan\": 11.274}\n}\n";
        let doc = append_run(Some(v1), &render_run(&tiny_cells(), true, "t1")).unwrap();
        let cells = trajectory_cells(run_fragment(&doc, "v1").unwrap());
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        assert_eq!(
            (c.nodes, c.queue_depth, c.mode.as_str()),
            (64, 100, "indexed")
        );
        // Pre-axis defaults.
        assert_eq!(c.backfill, "easy1");
        assert_eq!(c.incremental, "on");
        // The repair: elapsed re-derived from events / events_per_sec.
        assert!(c.elapsed_s > 0.0, "zero elapsed must be repaired");
        assert!((c.elapsed_s - 1172.0 / 2500058.662).abs() < 1e-12);
        // Labelled lookup finds the v2 run's cells with stored elapsed.
        let fresh = run_cell_lookup(&doc, "t1", 16, 20, "arena", "easy1", "on")
            .expect("fresh cell found by label");
        assert!(fresh.elapsed_s > 0.0 && fresh.events_per_sec > 0.0);
        assert_eq!(
            run_cell_lookup(&doc, "no-such-run", 16, 20, "arena", "easy1", "on"),
            None
        );
    }
}
