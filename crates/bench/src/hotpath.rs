//! Scheduler hot-path throughput benchmark — the `BENCH_sched.json`
//! trajectory.
//!
//! Drives a synthetic churn workload (a full machine with a deep pending
//! queue, one completion + one submission + one scheduling pass per
//! round, a backfill pass every `bf_interval`-like 30 rounds) through
//! the scheduler twice per grid cell: once on the incremental-index hot
//! path ([`SchedIndex::Indexed`]) and once on the pre-index scan
//! reference ([`SchedIndex::ScanReference`]). Both runs execute the
//! *identical* operation sequence — the two paths are decision-identical
//! by construction (pinned by `tests/index_equivalence.rs`) — so the
//! wall-clock ratio is a pure measure of the index win.
//!
//! [`bench_json`] runs the cluster-size × queue-depth grid and renders
//! the `dmr-bench-sched/v1` JSON document that `repro --bench-json`
//! writes to `BENCH_sched.json` at the repo root; [`validate_bench_json`]
//! is the schema gate the CI smoke step (and the unit tests) run against
//! the rendered document.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

use dmr_cluster::Cluster;
use dmr_sim::{SimTime, Span};
use dmr_slurm::{JobRequest, SchedIndex, Slurm, SlurmConfig};

/// Schema identifier embedded in (and required from) every document.
pub const SCHEMA: &str = "dmr-bench-sched/v1";

/// One (cluster size, queue depth, mode) measurement.
#[derive(Clone, Debug)]
pub struct CellResult {
    pub nodes: u32,
    pub queue_depth: u32,
    /// `"indexed"` or `"scan"`.
    pub mode: &'static str,
    pub rounds: u32,
    /// Scheduling events processed: submissions + completions + passes +
    /// job starts.
    pub events: u64,
    pub jobs_started: u64,
    pub peak_queue_depth: u64,
    pub elapsed_s: f64,
}

impl CellResult {
    pub fn events_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.events as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    pub fn jobs_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.jobs_started as f64 / self.elapsed_s
        } else {
            0.0
        }
    }
}

/// The benchmark grid: `(cluster nodes, pending queue depth)` cells,
/// ending with the headline 4096-node / 10k-deep scenario.
pub fn grid(smoke: bool) -> Vec<(u32, u32)> {
    if smoke {
        vec![(64, 100), (4096, 10_000)]
    } else {
        vec![
            (64, 100),
            (256, 1_000),
            (1024, 4_000),
            (4096, 1_000),
            (4096, 10_000),
        ]
    }
}

/// Rounds of churn per cell.
pub fn rounds(smoke: bool) -> u32 {
    if smoke {
        30
    } else {
        300
    }
}

/// Runs one grid cell under `mode`.
///
/// The churn loop mirrors the driver's steady state: the machine starts
/// full (one running job per 64th of the cluster), the queue starts
/// `depth` deep with mixed widths, and every round completes the oldest
/// running job, submits a replacement, and runs the event-driven
/// scheduling pass; every 30th round runs the periodic backfill pass
/// (Slurm's `bf_interval` at one round per second).
pub fn run_cell(nodes: u32, depth: u32, mode: SchedIndex, rounds: u32) -> CellResult {
    let mut cfg = SlurmConfig::for_cluster(nodes);
    cfg.sched_index = mode;
    // Steady-state churn would grow the terminal-record table without
    // bound; the streaming driver prunes it, so the bench does too.
    cfg.retain_completed = false;
    let mut s = Slurm::new(Cluster::new(nodes, 16), cfg);

    let width = (nodes / 64).max(1);
    let mut running: VecDeque<_> = VecDeque::new();
    for i in 0..nodes / width {
        s.submit(
            JobRequest::rigid(format!("run{i}"), width)
                .with_expected_runtime(Span::from_secs(600 + (u64::from(i) * 37) % 600)),
            SimTime::ZERO,
        );
    }
    for start in s.schedule(SimTime::ZERO) {
        running.push_back(start.id);
    }
    for i in 0..depth {
        s.submit(
            JobRequest::rigid(format!("pend{i}"), 1 + (i * 7) % (width * 4))
                .with_expected_runtime(Span::from_secs(120 + (u64::from(i) * 13) % 900)),
            SimTime::from_secs(1 + u64::from(i) % 100),
        );
    }

    let mut events: u64 = 0;
    let mut jobs_started: u64 = 0;
    let mut pending = u64::from(depth);
    let mut peak = pending;
    let t0 = Instant::now();
    for r in 0..rounds {
        let now = SimTime::from_secs(1000 + u64::from(r));
        if let Some(id) = running.pop_front() {
            s.complete(id, now);
            events += 1;
        }
        let i = depth + r;
        s.submit(
            JobRequest::rigid(format!("churn{r}"), 1 + (i * 7) % (width * 4))
                .with_expected_runtime(Span::from_secs(120 + (u64::from(i) * 13) % 900)),
            now,
        );
        pending += 1;
        events += 1;
        events += 1; // the scheduling pass itself
        for start in s.schedule(now) {
            running.push_back(start.id);
            jobs_started += 1;
            pending -= 1;
            events += 1;
        }
        if r % 30 == 29 {
            events += 1;
            for start in s.backfill_pass(now) {
                running.push_back(start.id);
                jobs_started += 1;
                pending -= 1;
                events += 1;
            }
        }
        peak = peak.max(pending);
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    CellResult {
        nodes,
        queue_depth: depth,
        mode: match mode {
            SchedIndex::Indexed => "indexed",
            SchedIndex::ScanReference => "scan",
        },
        rounds,
        events,
        jobs_started,
        peak_queue_depth: peak,
        elapsed_s,
    }
}

/// Runs the whole grid (both modes per cell), reporting progress through
/// `progress` (one line per finished cell; `repro` points this at
/// stderr).
pub fn run_grid(smoke: bool, mut progress: impl FnMut(&CellResult)) -> Vec<CellResult> {
    let rounds = rounds(smoke);
    let mut out = Vec::new();
    for (nodes, depth) in grid(smoke) {
        for mode in [SchedIndex::Indexed, SchedIndex::ScanReference] {
            let cell = run_cell(nodes, depth, mode, rounds);
            progress(&cell);
            out.push(cell);
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".into()
    }
}

/// Renders the grid results as the `dmr-bench-sched/v1` JSON document.
///
/// The headline block compares the two modes on the last grid cell (the
/// 4096-node / 10k-pending scenario): `speedup_vs_scan` is the
/// events-per-second ratio the acceptance gate reads.
pub fn render_json(cells: &[CellResult], smoke: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"nodes\": {}, \"queue_depth\": {}, \"mode\": \"{}\", \"rounds\": {}, \
             \"events\": {}, \"jobs_started\": {}, \"peak_queue_depth\": {}, \
             \"elapsed_s\": {}, \"events_per_sec\": {}, \"jobs_per_sec\": {}}}",
            c.nodes,
            c.queue_depth,
            c.mode,
            c.rounds,
            c.events,
            c.jobs_started,
            c.peak_queue_depth,
            json_f64(c.elapsed_s),
            json_f64(c.events_per_sec()),
            json_f64(c.jobs_per_sec()),
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let headline = headline(cells);
    let _ = writeln!(
        out,
        "  \"headline\": {{\"nodes\": {}, \"queue_depth\": {}, \
         \"indexed_events_per_sec\": {}, \"scan_events_per_sec\": {}, \
         \"speedup_vs_scan\": {}}}",
        headline.0,
        headline.1,
        json_f64(headline.2),
        json_f64(headline.3),
        json_f64(headline.4),
    );
    out.push_str("}\n");
    out
}

/// `(nodes, depth, indexed ev/s, scan ev/s, speedup)` of the last cell.
fn headline(cells: &[CellResult]) -> (u32, u32, f64, f64, f64) {
    let Some(scan) = cells.iter().rev().find(|c| c.mode == "scan") else {
        return (0, 0, 0.0, 0.0, 0.0);
    };
    let indexed = cells.iter().rev().find(|c| {
        c.mode == "indexed" && c.nodes == scan.nodes && c.queue_depth == scan.queue_depth
    });
    let Some(indexed) = indexed else {
        return (
            scan.nodes,
            scan.queue_depth,
            0.0,
            scan.events_per_sec(),
            0.0,
        );
    };
    let speedup = if scan.events_per_sec() > 0.0 {
        indexed.events_per_sec() / scan.events_per_sec()
    } else {
        0.0
    };
    (
        scan.nodes,
        scan.queue_depth,
        indexed.events_per_sec(),
        scan.events_per_sec(),
        speedup,
    )
}

/// Extracts `headline.speedup_vs_scan` from a rendered document — the
/// one scraper shared by the schema gate and the `repro` acceptance
/// check, so the key format lives in exactly one place.
pub fn headline_speedup(doc: &str) -> Option<f64> {
    doc.split("\"speedup_vs_scan\": ")
        .nth(1)
        .and_then(|rest| rest.split(['}', ',']).next())
        .and_then(|v| v.trim().parse::<f64>().ok())
}

/// Structural schema gate for a rendered document: required keys present,
/// braces balanced, a parseable headline speedup. Deliberately minimal —
/// it guards the CI artifact against shape regressions, not against
/// perf regressions (those need comparable hardware).
pub fn validate_bench_json(doc: &str) -> Result<(), String> {
    for key in [
        "\"schema\"",
        "\"smoke\"",
        "\"cells\"",
        "\"headline\"",
        "\"events_per_sec\"",
        "\"jobs_per_sec\"",
        "\"peak_queue_depth\"",
        "\"speedup_vs_scan\"",
    ] {
        if !doc.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    if !doc.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("schema is not {SCHEMA}"));
    }
    let opens = doc.matches('{').count();
    let closes = doc.matches('}').count();
    if opens != closes {
        return Err(format!("unbalanced braces: {opens} vs {closes}"));
    }
    let speedup = headline_speedup(doc).ok_or("speedup_vs_scan is not a number")?;
    if !speedup.is_finite() || speedup < 0.0 {
        return Err(format!("speedup_vs_scan {speedup} out of range"));
    }
    Ok(())
}

/// Runs the grid and renders the document — what `repro --bench-json`
/// writes to `BENCH_sched.json`.
pub fn bench_json(smoke: bool, progress: impl FnMut(&CellResult)) -> String {
    render_json(&run_grid(smoke, progress), smoke)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cells() -> Vec<CellResult> {
        [SchedIndex::Indexed, SchedIndex::ScanReference]
            .into_iter()
            .map(|m| run_cell(16, 20, m, 5))
            .collect()
    }

    #[test]
    fn identical_operation_sequences_in_both_modes() {
        let cells = tiny_cells();
        assert_eq!(cells[0].events, cells[1].events, "paths diverged");
        assert_eq!(cells[0].jobs_started, cells[1].jobs_started);
        assert_eq!(cells[0].peak_queue_depth, cells[1].peak_queue_depth);
    }

    #[test]
    fn rendered_document_validates() {
        let doc = render_json(&tiny_cells(), true);
        validate_bench_json(&doc).unwrap();
        assert!(doc.contains("\"mode\": \"indexed\""));
        assert!(doc.contains("\"mode\": \"scan\""));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let doc = render_json(&tiny_cells(), true);
        assert!(validate_bench_json(&doc.replace("speedup_vs_scan", "nope")).is_err());
        assert!(
            validate_bench_json(&doc[..doc.len() - 3]).is_err(),
            "unbalanced"
        );
        assert!(validate_bench_json("{}").is_err());
    }

    #[test]
    fn grid_ends_with_the_headline_cell() {
        for smoke in [true, false] {
            assert_eq!(*grid(smoke).last().unwrap(), (4096, 10_000));
        }
    }
}
