//! # dmr-bench — the reproduction harness
//!
//! One function per table/figure of the paper's evaluation. The `repro`
//! binary dispatches to these; the criterion benches reuse them at reduced
//! scale. Every function both *returns* structured rows (for tests and
//! EXPERIMENTS.md generation) and *prints* a paper-style table.

pub mod figures;
pub mod report;

/// The workload sizes of Figures 3 and 7.
pub const PRELIM_JOB_COUNTS: [u32; 6] = [10, 25, 50, 100, 200, 400];
/// The workload sizes of Figures 10 and 11 / Table II.
pub const PRODUCTION_JOB_COUNTS: [u32; 4] = [50, 100, 200, 400];
/// Seed used throughout ("randomly-sorted jobs with a fixed seed", §IX-A).
pub const SEED: u64 = 20170814;
