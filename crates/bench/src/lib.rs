//! # dmr-bench — the reproduction harness
//!
//! One function per table/figure of the paper's evaluation ([`figures`]),
//! plus the scenario layer: a declarative [`scenario`] registry (workload
//! mix × cluster size × policy × sync/async mode) and the parallel
//! [`sweep`] runner that fans `run_experiment` over the (scenario × seed)
//! grid with deterministic, thread-count-independent CSV output, and the
//! [`hotpath`] throughput benchmark that pits the indexed scheduler
//! against the pre-index scan oracle and writes the `BENCH_sched.json`
//! perf trajectory. The `repro` binary dispatches to all three; the
//! criterion benches reuse the figure functions at reduced scale. Every figure function both
//! *returns* structured rows (for tests and EXPERIMENTS.md generation)
//! and *prints* a paper-style table.

pub mod figures;
pub mod hotpath;
pub mod report;
pub mod scenario;
pub mod sweep;

/// The workload sizes of Figures 3 and 7.
pub const PRELIM_JOB_COUNTS: [u32; 6] = [10, 25, 50, 100, 200, 400];
/// The workload sizes of Figures 10 and 11 / Table II.
pub const PRODUCTION_JOB_COUNTS: [u32; 4] = [50, 100, 200, 400];
/// Seed used throughout ("randomly-sorted jobs with a fixed seed", §IX-A).
pub const SEED: u64 = 20170814;
