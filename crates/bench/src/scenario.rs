//! Declarative scenario registry.
//!
//! A [`Scenario`] is one cell of the evaluation grid: a workload source ×
//! cluster size × reconfiguration policy × scheduling mode. The registry
//! enumerates the grid declaratively so the sweep runner ([`crate::sweep`])
//! and the `repro --sweep` CLI never hand-roll configurations, and every
//! future policy or workload lands here as one more axis value.
//!
//! The workload axis covers every shipped [`WorkloadSource`] family: the
//! three Feitelson presets, the two adversarial synthetics (burst spikes,
//! diurnal sine arrivals) and SWF trace replay (the bundled
//! [`TINY_SWF`] fixture, so scenarios need no filesystem access).

use dmr_core::{BackfillFamily, ExperimentConfig, FaultLoad, MachineMix, PolicyKind, ScheduleMode};
use dmr_workload::{Capped, SwfMapping, SwfTrace, WorkloadKind, WorkloadSource};

/// The bundled SWF trace fixture, embedded at compile time (the same
/// file lives at `tests/fixtures/tiny.swf` for the `repro --trace` CI
/// smoke): 12 replayable jobs plus one killed record the parser skips.
pub const TINY_SWF: &str = include_str!("../../../tests/fixtures/tiny.swf");

/// Which workload source a scenario draws from.
///
/// `Copy` like [`WorkloadKind`] so the grid stays plain data; trace
/// replay is represented by the embedded fixture rather than a path, so
/// scenarios are hermetic (no working-directory dependence in tests or
/// sweeps).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum WorkloadSel {
    /// One of the built-in synthetic generators.
    Synthetic(WorkloadKind),
    /// Replay of the bundled [`TINY_SWF`] fixture.
    SwfFixture,
}

impl WorkloadSel {
    /// Stable family identifier used in the sweep CSV `workload` column.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadSel::Synthetic(kind) => kind.name(),
            WorkloadSel::SwfFixture => "swf-tiny",
        }
    }

    /// Parameter-carrying identifier used in scenario names, so two
    /// tunings of the same generator key distinct CSV rows (mirrors
    /// [`PolicyKind::label`]).
    pub fn label(self) -> String {
        match self {
            WorkloadSel::Synthetic(kind) => kind.label(),
            WorkloadSel::SwfFixture => "swf-tiny".into(),
        }
    }

    /// Instantiates the streaming source: at most `jobs` jobs,
    /// deterministic in `seed` (trace replay ignores the seed — a replay
    /// has no randomness).
    pub fn build(self, jobs: u32, seed: u64) -> Box<dyn WorkloadSource> {
        match self {
            WorkloadSel::Synthetic(kind) => kind.build(jobs, seed),
            WorkloadSel::SwfFixture => Box::new(Capped::new(
                SwfTrace::from_static(TINY_SWF, SwfMapping::default()),
                jobs,
            )),
        }
    }
}

/// Which backfill configuration a scenario runs — the `backfill` axis of
/// the grid and the CSV column of the same name.
///
/// The axis crosses the on/off ablation switch with the
/// [`BackfillFamily`] depth knob: `Off` disables backfill entirely,
/// the other values run the slot-set families at representative depths.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum BackfillSel {
    /// Backfill disabled (the ablation baseline).
    Off,
    /// EASY with one reservation — the paper's Slurm configuration.
    Easy1,
    /// EASY with eight reservations (deep-queue protection).
    Easy8,
    /// Conservative: every blocked job gets a planned slot.
    Conservative,
}

impl BackfillSel {
    /// Stable identifier used in scenario names and the CSV `backfill`
    /// column.
    pub fn name(self) -> &'static str {
        match self {
            BackfillSel::Off => "off",
            BackfillSel::Easy1 => "easy1",
            BackfillSel::Easy8 => "easy8",
            BackfillSel::Conservative => "conservative",
        }
    }

    /// Applies this selection to an experiment configuration.
    pub fn apply(self, mut cfg: ExperimentConfig) -> ExperimentConfig {
        match self {
            BackfillSel::Off => cfg.backfill = false,
            BackfillSel::Easy1 => cfg.backfill_family = BackfillFamily::easy(1),
            BackfillSel::Easy8 => cfg.backfill_family = BackfillFamily::easy(8),
            BackfillSel::Conservative => cfg.backfill_family = BackfillFamily::Conservative,
        }
        cfg
    }
}

/// One cell of the scenario grid.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub workload: WorkloadSel,
    /// Job count (an upper bound for trace replays, which end with the
    /// trace).
    pub jobs: u32,
    pub nodes: u32,
    pub policy: PolicyKind,
    pub mode: ScheduleMode,
    pub backfill: BackfillSel,
    /// Machine-class composition the cluster is built from. `Uniform`
    /// (the historical single-class machine) leaves the scenario name
    /// unchanged, so the pre-heterogeneity grid keys identical CSV rows.
    pub mix: MachineMix,
    /// Node-failure load the cell runs under. `None` (the historical
    /// fault-free machine) leaves the scenario name unchanged, like
    /// [`MachineMix::Uniform`].
    pub faults: FaultLoad,
    /// Periodic checkpoint interval in seconds (`None` restarts failed
    /// jobs from scratch). Only meaningful — and only named — on faulty
    /// cells.
    pub ckpt_s: Option<u32>,
}

impl Scenario {
    /// Stable identifier, e.g. `fs-50j-n20-fair-share-120-async-easy1`.
    /// Uses the parameter-carrying workload and policy labels so two
    /// tunings of the same source or policy get distinct names (they key
    /// CSV rows). Non-uniform machine mixes append their name as one more
    /// axis suffix; uniform scenarios keep their historical names.
    pub fn name(&self) -> String {
        let mode = match self.mode {
            ScheduleMode::Synchronous => "sync",
            ScheduleMode::Asynchronous => "async",
        };
        let mut name = format!(
            "{}-{}j-n{}-{}-{}-{}",
            self.workload.label(),
            self.jobs,
            self.nodes,
            self.policy.label(),
            mode,
            self.backfill.name()
        );
        if self.mix != MachineMix::Uniform {
            name.push('-');
            name.push_str(self.mix.name());
        }
        if !self.faults.is_none() {
            name.push('-');
            name.push_str(self.faults.name());
            if let Some(s) = self.ckpt_s {
                name.push_str(&format!("-ckpt{s}"));
            }
        }
        name
    }

    /// The experiment configuration this scenario runs under. Sweeps run
    /// with streaming [`dmr_core::Telemetry::Online`] telemetry: grid
    /// cells only need summaries, and the bounded-memory path produces
    /// bit-identical ones, so even million-job scenarios stay O(1) per
    /// worker.
    pub fn config(&self) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::preliminary()
            .with_policy(self.policy)
            .online();
        cfg.nodes = self.nodes;
        cfg.mode = self.mode;
        cfg.machine_mix = self.mix;
        cfg = cfg.with_faults(self.faults);
        if let Some(s) = self.ckpt_s {
            cfg = cfg.with_ckpt_interval(f64::from(s));
        }
        self.backfill.apply(cfg)
    }

    /// The deterministic workload source for `seed`.
    pub fn source(&self, seed: u64) -> Box<dyn WorkloadSource> {
        self.workload.build(self.jobs, seed)
    }
}

/// The four shipped policies, one per [`PolicyKind`] variant.
pub fn all_policies() -> [PolicyKind; 4] {
    [
        PolicyKind::Algorithm1,
        PolicyKind::utilization_target(),
        PolicyKind::fair_share(),
        PolicyKind::energy_aware(),
    ]
}

/// Every workload-source family at its natural scale: the paper mixes at
/// their testbed sizes, the adversarial synthetics and the trace fixture
/// at preliminary scale. New sources join the grid here (each entry is
/// `(source, job count, cluster nodes)`).
pub fn workload_axis(fs_jobs: u32) -> [(WorkloadSel, u32, u32); 5] {
    [
        (
            WorkloadSel::Synthetic(WorkloadKind::FsPreliminary),
            fs_jobs,
            20,
        ),
        (WorkloadSel::Synthetic(WorkloadKind::RealMix), fs_jobs, 65),
        (WorkloadSel::Synthetic(WorkloadKind::burst()), fs_jobs, 20),
        (WorkloadSel::Synthetic(WorkloadKind::diurnal()), fs_jobs, 20),
        (WorkloadSel::SwfFixture, 12, 20),
    ]
}

/// The backfill axis of the grid: the on/off ablation plus the slot-set
/// families at representative depths.
pub fn all_backfills() -> [BackfillSel; 4] {
    [
        BackfillSel::Off,
        BackfillSel::Easy1,
        BackfillSel::Easy8,
        BackfillSel::Conservative,
    ]
}

/// The heterogeneous cells of the grid: the GPU-tagged real mix on a
/// three-class machine (standard / big-memory / GPU), under the paper's
/// Algorithm 1 and the energy-aware policy. Small on purpose — the
/// uniform grid carries the coverage; these cells exist so every sweep
/// exercises class-constrained placement, per-class speed scaling and
/// the power meter end to end.
pub fn hetero_axis(jobs: u32) -> Vec<Scenario> {
    [PolicyKind::Algorithm1, PolicyKind::energy_aware()]
        .into_iter()
        .map(|policy| Scenario {
            workload: WorkloadSel::Synthetic(WorkloadKind::real_gpu()),
            jobs,
            nodes: 65,
            policy,
            mode: ScheduleMode::Asynchronous,
            backfill: BackfillSel::Easy1,
            mix: MachineMix::Hetero3,
            faults: FaultLoad::None,
            ckpt_s: None,
        })
        .collect()
}

/// The fault-injection cells of the grid: the preliminary Feitelson mix
/// under each non-trivial [`FaultLoad`], with and without periodic
/// checkpointing. Small on purpose, like [`hetero_axis`] — these cells
/// exist so every sweep exercises node failure, requeue/restart and the
/// lost-work accounting end to end, and so the recovery benefit of
/// checkpointing is visible as a goodput delta inside one CSV.
pub fn fault_axis(jobs: u32) -> Vec<Scenario> {
    [FaultLoad::Rare, FaultLoad::Harsh]
        .into_iter()
        .flat_map(|faults| {
            [None, Some(600u32)]
                .into_iter()
                .map(move |ckpt_s| Scenario {
                    workload: WorkloadSel::Synthetic(WorkloadKind::FsPreliminary),
                    jobs,
                    nodes: 20,
                    policy: PolicyKind::Algorithm1,
                    mode: ScheduleMode::Asynchronous,
                    backfill: BackfillSel::Easy1,
                    mix: MachineMix::Uniform,
                    faults,
                    ckpt_s,
                })
        })
        .collect()
}

/// The full scenario grid: every workload source × every policy × (sync,
/// async) × every backfill selection on the uniform machine, plus the
/// heterogeneous three-class cells from [`hetero_axis`] and the
/// fault-injection cells from [`fault_axis`].
pub fn registry() -> Vec<Scenario> {
    let mut out = grid(&workload_axis(50));
    out.extend(hetero_axis(50));
    out.extend(fault_axis(50));
    out
}

/// A CI-sized subset of the grid: 10-job workloads from every source
/// family, every policy, both modes, every backfill selection — fast
/// enough for a smoke job, wide enough to cross every workload × policy ×
/// mode × backfill tuple (plus the heterogeneous cells).
pub fn smoke_registry() -> Vec<Scenario> {
    let mut out = grid(&workload_axis(10).map(|(w, jobs, nodes)| (w, jobs.min(10), nodes)));
    out.extend(hetero_axis(10));
    out.extend(fault_axis(10));
    out
}

fn grid(workloads: &[(WorkloadSel, u32, u32)]) -> Vec<Scenario> {
    let mut out = Vec::new();
    for &(workload, jobs, nodes) in workloads {
        for policy in all_policies() {
            for mode in [ScheduleMode::Synchronous, ScheduleMode::Asynchronous] {
                for backfill in all_backfills() {
                    out.push(Scenario {
                        workload,
                        jobs,
                        nodes,
                        policy,
                        mode,
                        backfill,
                        mix: MachineMix::Uniform,
                        faults: FaultLoad::None,
                        ckpt_s: None,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_source_policy_and_mode() {
        let reg = registry();
        assert_eq!(
            reg.len(),
            166,
            "5 workloads x 4 policies x 2 modes x 4 backfills + 2 hetero + 4 fault cells"
        );
        for policy in all_policies() {
            assert!(reg.iter().any(|s| s.policy == policy));
        }
        for backfill in all_backfills() {
            assert!(reg.iter().any(|s| s.backfill == backfill));
        }
        assert!(reg.iter().any(|s| s.mode == ScheduleMode::Asynchronous));
        for name in ["fs", "real", "burst", "diurnal", "swf-tiny"] {
            assert!(
                reg.iter().any(|s| s.workload.name() == name),
                "missing workload {name}"
            );
        }
        // Names are unique (they key CSV rows).
        let mut names: Vec<String> = reg.iter().map(Scenario::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), reg.len());
    }

    #[test]
    fn smoke_registry_is_small_but_covers_every_source() {
        let smoke = smoke_registry();
        assert_eq!(
            smoke.len(),
            166,
            "5 workloads x 4 policies x 2 modes x 4 backfills + 2 hetero + 4 fault cells"
        );
        assert!(smoke.iter().all(|s| s.jobs <= 10));
        for name in ["fs", "real", "burst", "diurnal", "swf-tiny"] {
            assert!(smoke.iter().any(|s| s.workload.name() == name));
        }
        assert!(smoke
            .iter()
            .any(|s| s.backfill == BackfillSel::Conservative));
    }

    #[test]
    fn backfill_axis_lands_in_the_config() {
        let base = Scenario {
            workload: WorkloadSel::Synthetic(WorkloadKind::FsPreliminary),
            jobs: 10,
            nodes: 20,
            policy: PolicyKind::Algorithm1,
            mode: ScheduleMode::Synchronous,
            backfill: BackfillSel::Off,
            mix: MachineMix::Uniform,
            faults: FaultLoad::None,
            ckpt_s: None,
        };
        assert!(!base.config().backfill);
        assert!(base.name().ends_with("-off"));
        let easy8 = Scenario {
            backfill: BackfillSel::Easy8,
            ..base.clone()
        };
        assert!(easy8.config().backfill);
        assert_eq!(easy8.config().backfill_family, BackfillFamily::easy(8));
        assert!(easy8.name().ends_with("-easy8"));
        let cons = Scenario {
            backfill: BackfillSel::Conservative,
            ..base
        };
        assert_eq!(cons.config().backfill_family, BackfillFamily::Conservative);
        assert!(cons.name().ends_with("-conservative"));
    }

    #[test]
    fn scenario_config_and_source_are_deterministic() {
        for sc in smoke_registry().iter().take(7) {
            assert_eq!(sc.config().nodes, sc.nodes);
            assert_eq!(sc.config().policy, sc.policy);
            let a = dmr_workload::source::collect_jobs(sc.source(7).as_mut());
            let b = dmr_workload::source::collect_jobs(sc.source(7).as_mut());
            assert_eq!(a.len(), b.len());
            assert!(a.len() <= sc.jobs as usize);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.arrival_s, y.arrival_s);
                assert_eq!(x.submit_procs, y.submit_procs);
            }
        }
    }

    #[test]
    fn hetero_cells_carry_the_three_class_machine() {
        let cells = hetero_axis(10);
        assert_eq!(cells.len(), 2, "Algorithm 1 and energy-aware");
        for sc in &cells {
            assert_eq!(sc.config().machine_mix, MachineMix::Hetero3);
            assert!(sc.name().ends_with("-hetero3"), "{}", sc.name());
            assert_eq!(sc.workload.name(), "real-gpu");
        }
        assert!(cells.iter().any(|s| s.policy == PolicyKind::energy_aware()));
        // Uniform cells keep their historical (suffix-free) names.
        let uniform = &registry()[0];
        assert!(!uniform.name().contains("uniform"));
    }

    #[test]
    fn fault_cells_carry_load_and_checkpoint_into_the_config() {
        let cells = fault_axis(10);
        assert_eq!(cells.len(), 4, "rare/harsh x scratch/ckpt600");
        for sc in &cells {
            assert!(!sc.config().faults.is_none());
            assert!(sc.name().contains("-rare") || sc.name().contains("-harsh"));
        }
        let ckpt = cells
            .iter()
            .find(|s| s.faults == FaultLoad::Harsh && s.ckpt_s.is_some())
            .expect("checkpointed harsh cell");
        assert_eq!(ckpt.config().ckpt_interval_s, Some(600.0));
        assert!(ckpt.name().ends_with("-harsh-ckpt600"), "{}", ckpt.name());
        let scratch = cells
            .iter()
            .find(|s| s.faults == FaultLoad::Rare && s.ckpt_s.is_none())
            .expect("scratch rare cell");
        assert_eq!(scratch.config().ckpt_interval_s, None);
        assert!(scratch.name().ends_with("-rare"), "{}", scratch.name());
        // Fault-free cells keep their historical (suffix-free) names.
        assert!(!registry()[0].name().contains("none"));
    }

    #[test]
    fn swf_fixture_replays_twelve_jobs() {
        let sel = WorkloadSel::SwfFixture;
        let jobs = dmr_workload::source::collect_jobs(sel.build(100, 0).as_mut());
        assert_eq!(jobs.len(), 12, "fixture has 12 replayable records");
        assert!(jobs.iter().all(|j| j.submit_procs <= 16));
    }
}
