//! Declarative scenario registry.
//!
//! A [`Scenario`] is one cell of the evaluation grid: a workload mix ×
//! cluster size × reconfiguration policy × scheduling mode. The registry
//! enumerates the grid declaratively so the sweep runner ([`crate::sweep`])
//! and the `repro --sweep` CLI never hand-roll configurations, and every
//! future policy or workload lands here as one more axis value.

use dmr_core::{ExperimentConfig, PolicyKind, ScheduleMode, SimJob};
use dmr_workload::{WorkloadConfig, WorkloadGenerator};

/// Which workload generator family a scenario draws from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadKind {
    /// §VIII FS-only preliminary mix (20-node testbed scale).
    FsPreliminary,
    /// §VIII-E micro-step FS variant (inhibitor stress).
    FsMicroSteps,
    /// §IX CG/Jacobi/N-body production mix (65-node scale).
    RealMix,
}

impl WorkloadKind {
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::FsPreliminary => "fs",
            WorkloadKind::FsMicroSteps => "fs-micro",
            WorkloadKind::RealMix => "real",
        }
    }

    fn config(self, jobs: u32) -> WorkloadConfig {
        match self {
            WorkloadKind::FsPreliminary => WorkloadConfig::fs_preliminary(jobs),
            WorkloadKind::FsMicroSteps => WorkloadConfig::fs_micro_steps(jobs),
            WorkloadKind::RealMix => WorkloadConfig::real_mix(jobs),
        }
    }
}

/// One cell of the scenario grid.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub workload: WorkloadKind,
    pub jobs: u32,
    pub nodes: u32,
    pub policy: PolicyKind,
    pub mode: ScheduleMode,
}

impl Scenario {
    /// Stable identifier, e.g. `fs50-n20-fair-share-120-async`. Uses the
    /// parameter-carrying policy label so two tunings of the same policy
    /// get distinct names (they key CSV rows).
    pub fn name(&self) -> String {
        let mode = match self.mode {
            ScheduleMode::Synchronous => "sync",
            ScheduleMode::Asynchronous => "async",
        };
        format!(
            "{}{}-n{}-{}-{}",
            self.workload.name(),
            self.jobs,
            self.nodes,
            self.policy.label(),
            mode
        )
    }

    /// The experiment configuration this scenario runs under.
    pub fn config(&self) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::preliminary().with_policy(self.policy);
        cfg.nodes = self.nodes;
        cfg.mode = self.mode;
        cfg
    }

    /// The deterministic workload for `seed`.
    pub fn generate(&self, seed: u64) -> Vec<SimJob> {
        SimJob::from_specs(WorkloadGenerator::new(self.workload.config(self.jobs), seed).generate())
    }
}

/// The three shipped policies, one per [`PolicyKind`] variant.
pub fn all_policies() -> [PolicyKind; 3] {
    [
        PolicyKind::Algorithm1,
        PolicyKind::utilization_target(),
        PolicyKind::fair_share(),
    ]
}

/// The full scenario grid: (FS preliminary @ 20 nodes, production mix @
/// 65 nodes) × every policy × (sync, async).
pub fn registry() -> Vec<Scenario> {
    grid(&[
        (WorkloadKind::FsPreliminary, 50, 20),
        (WorkloadKind::RealMix, 50, 65),
    ])
}

/// A CI-sized subset of the grid: small FS workloads only, every policy,
/// both modes — fast enough for a smoke job, wide enough to cross every
/// policy × mode pair.
pub fn smoke_registry() -> Vec<Scenario> {
    grid(&[(WorkloadKind::FsPreliminary, 10, 20)])
}

fn grid(workloads: &[(WorkloadKind, u32, u32)]) -> Vec<Scenario> {
    let mut out = Vec::new();
    for &(workload, jobs, nodes) in workloads {
        for policy in all_policies() {
            for mode in [ScheduleMode::Synchronous, ScheduleMode::Asynchronous] {
                out.push(Scenario {
                    workload,
                    jobs,
                    nodes,
                    policy,
                    mode,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_policy_and_mode() {
        let reg = registry();
        assert_eq!(reg.len(), 12, "2 workloads x 3 policies x 2 modes");
        for policy in all_policies() {
            assert!(reg.iter().any(|s| s.policy == policy));
        }
        assert!(reg.iter().any(|s| s.mode == ScheduleMode::Asynchronous));
        // Names are unique (they key CSV rows).
        let mut names: Vec<String> = reg.iter().map(Scenario::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), reg.len());
    }

    #[test]
    fn smoke_registry_is_small_but_wide() {
        let smoke = smoke_registry();
        assert_eq!(smoke.len(), 6, "3 policies x 2 modes");
        assert!(smoke.iter().all(|s| s.jobs <= 10));
    }

    #[test]
    fn scenario_config_and_workload_are_deterministic() {
        let sc = &smoke_registry()[0];
        assert_eq!(sc.config().nodes, sc.nodes);
        assert_eq!(sc.config().policy, sc.policy);
        let a = sc.generate(7);
        let b = sc.generate(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec.arrival_s, y.spec.arrival_s);
            assert_eq!(x.spec.submit_procs, y.spec.submit_procs);
        }
    }
}
