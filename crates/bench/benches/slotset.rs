//! Slot-set timeline micro-benchmarks: hole-finding, plan/unplan
//! split-merge, and the backfill pass itself at queue depths 1k–100k,
//! head-to-head with the legacy single-reservation walk the timeline
//! replaced. The `repro --bench-json` grid measures the same families
//! end-to-end; this bench isolates the per-operation treap costs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dmr_cluster::Cluster;
use dmr_sim::{SimTime, Span};
use dmr_slurm::{BackfillFamily, JobRequest, SlotSet, Slurm, SlurmConfig};

const DEPTHS: [u32; 3] = [1_000, 10_000, 100_000];

/// A timeline carrying `plans` staggered intervals (the steady-state
/// shape after a deep conservative pass: overlapping plans at mixed
/// widths and durations).
fn planned_timeline(plans: u32) -> SlotSet {
    let mut tl = SlotSet::new(SimTime::ZERO);
    for i in 0..u64::from(plans) {
        let from = SimTime::from_secs((i * 37) % 90_000);
        let until = from + Span::from_secs(120 + (i * 13) % 900);
        tl.plan(from, until, 1 + (i % 64) as u32);
    }
    tl
}

fn bench_hole_finding(c: &mut Criterion) {
    let mut g = c.benchmark_group("slotset");
    for depth in DEPTHS {
        let tl = planned_timeline(depth);
        // A tight cap forces the query past the congested region instead
        // of accepting the first boundary.
        g.bench_function(format!("earliest_hole_{depth}slots"), |b| {
            b.iter(|| {
                black_box(tl.earliest_hole(
                    black_box(SimTime::ZERO),
                    black_box(64),
                    Span::from_secs(300),
                ))
            })
        });
    }
    g.finish();
}

fn bench_plan_unplan(c: &mut Criterion) {
    let mut g = c.benchmark_group("slotset");
    for depth in DEPTHS {
        g.bench_function(format!("plan_unplan_{depth}slots"), |b| {
            b.iter_batched(
                || planned_timeline(depth),
                |mut tl| {
                    // One plan/unplan pair mid-timeline: two splits, a
                    // lazy range-add, and the coalescing merges back.
                    let from = SimTime::from_secs(45_000);
                    let until = from + Span::from_secs(500);
                    tl.plan(from, until, 7);
                    tl.unplan(from, until, 7);
                    black_box(tl.len())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// A full 64-node machine with `pending` blocked jobs queued — the state
/// a backfill pass walks.
fn deep_queue(pending: u32, family: BackfillFamily) -> Slurm {
    let mut cfg = SlurmConfig::for_cluster(64);
    cfg.backfill_family = family;
    let mut s = Slurm::new(Cluster::new(64, 16), cfg);
    for i in 0..8u64 {
        s.submit(
            JobRequest::rigid(format!("run{i}"), 8)
                .with_expected_runtime(Span::from_secs(600 + i * 60)),
            SimTime::ZERO,
        );
    }
    s.schedule(SimTime::ZERO);
    for i in 0..pending {
        s.submit(
            JobRequest::rigid(format!("pend{i}"), 9 + i % 48)
                .with_expected_runtime(Span::from_secs(120 + u64::from(i) * 13 % 900)),
            SimTime::from_secs(1),
        );
    }
    s
}

fn bench_backfill_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("backfill");
    for depth in DEPTHS {
        for (label, family) in [
            ("legacy", BackfillFamily::LegacyReference),
            ("easy1", BackfillFamily::easy(1)),
            ("easy8", BackfillFamily::easy(8)),
            ("conservative", BackfillFamily::Conservative),
        ] {
            g.bench_function(format!("pass_{label}_q{depth}"), |b| {
                b.iter_batched(
                    || deep_queue(depth, family),
                    |mut s| black_box(s.backfill_pass(SimTime::from_secs(5)).len()),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_hole_finding,
    bench_plan_unplan,
    bench_backfill_pass
);
criterion_main!(benches);
