//! Micro-benchmarks of the discrete-event engine: the substrate every
//! workload experiment runs on, so its throughput bounds experiment
//! turnaround.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use dmr_sim::{Engine, EventQueue, SimTime, Span};

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("push_pop_{n}"), |b| {
            b.iter_batched(
                EventQueue::<u64>::new,
                |mut q| {
                    // Reverse order stresses the heap.
                    for i in (0..n).rev() {
                        q.push(SimTime(i), i);
                    }
                    while let Some(e) = q.pop() {
                        black_box(e);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.bench_function("cancel_half_100k", |b| {
        b.iter_batched(
            || {
                let mut q = EventQueue::new();
                let keys: Vec<_> = (0..100_000u64).map(|i| q.push(SimTime(i), i)).collect();
                (q, keys)
            },
            |(mut q, keys)| {
                for k in keys.iter().step_by(2) {
                    q.cancel(*k);
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_engine_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(100_000));
    // A self-rescheduling event chain: the dominant pattern in the
    // workload driver (each segment schedules the next).
    g.bench_function("self_rescheduling_chain_100k", |b| {
        b.iter(|| {
            let mut eng: Engine<u32> = Engine::new();
            eng.schedule_at(SimTime::ZERO, 0);
            let mut fired = 0u64;
            eng.run(|eng, _, k| {
                fired += 1;
                if k < 100_000 {
                    eng.schedule_in(Span(10), k + 1);
                }
            });
            black_box(fired)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_queue, bench_engine_loop);
criterion_main!(benches);
