//! Scaled-down versions of the paper's figure experiments, one bench per
//! chart family, so regressions in simulation cost (or policy behaviour
//! explosions, e.g. reconfiguration thrash) show up in CI timing.
//!
//! The full-scale reproduction lives in the `repro` binary; these benches
//! run the same code paths at reduced job counts.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dmr_bench::figures;
use dmr_bench::SEED;

fn bench_fig3_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig3_fs_25jobs", |b| {
        b.iter(|| black_box(figures::fig3(&[25], SEED)))
    });
    g.bench_function("fig7_async_25jobs", |b| {
        b.iter(|| black_box(figures::fig7(&[25], SEED)))
    });
    g.bench_function("fig8_mix_sweep_25jobs", |b| {
        b.iter(|| black_box(figures::fig8(25, SEED)))
    });
    g.bench_function("fig9_inhibitor_sweep_10jobs", |b| {
        b.iter(|| black_box(figures::fig9(&[10], SEED)))
    });
    g.finish();
}

fn bench_production_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_production");
    g.sample_size(10);
    g.bench_function("fig10_table2_25jobs", |b| {
        b.iter(|| black_box(figures::production_summaries(&[25], SEED)))
    });
    g.bench_function("fig1_cost_model", |b| b.iter(|| black_box(figures::fig1())));
    g.finish();
}

criterion_group!(benches, bench_fig3_family, bench_production_family);
criterion_main!(benches);
