//! Scheduler micro-benchmarks: FIFO cycle, EASY backfill pass, and the
//! Algorithm-1 decision — the operations on the RMS's critical path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dmr_cluster::Cluster;
use dmr_sim::{SimTime, Span};
use dmr_slurm::{JobRequest, ResizeEnvelope, Slurm};

fn deep_queue(pending: u32) -> Slurm {
    let mut s = Slurm::with_cluster(Cluster::new(64, 16));
    // Fill the machine.
    for i in 0..8 {
        s.submit(
            JobRequest::rigid(format!("run{i}"), 8)
                .with_expected_runtime(Span::from_secs(600 + i * 60)),
            SimTime::ZERO,
        );
    }
    s.schedule(SimTime::ZERO);
    // Deep pending queue of mixed sizes.
    for i in 0..pending {
        s.submit(
            JobRequest::rigid(format!("pend{i}"), 1 + (i * 7) % 32)
                .with_expected_runtime(Span::from_secs(120 + (i as u64 * 13) % 900)),
            SimTime::from_secs(1 + i as u64),
        );
    }
    s
}

fn bench_cycles(c: &mut Criterion) {
    let mut g = c.benchmark_group("slurm");
    for pending in [50u32, 400] {
        g.bench_function(format!("fifo_cycle_q{pending}"), |b| {
            b.iter_batched(
                || deep_queue(pending),
                |mut s| black_box(s.schedule(SimTime::from_secs(1000))),
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("backfill_pass_q{pending}"), |b| {
            b.iter_batched(
                || deep_queue(pending),
                |mut s| black_box(s.backfill_pass(SimTime::from_secs(1000))),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy");
    for pending in [0u32, 50, 400] {
        g.bench_function(format!("decide_resize_q{pending}"), |b| {
            b.iter_batched(
                || {
                    let mut s = deep_queue(pending);
                    let id = s.submit(
                        JobRequest::flexible(
                            "flex",
                            8,
                            ResizeEnvelope {
                                min: 1,
                                max: 32,
                                preferred: None,
                                factor: 2,
                            },
                        ),
                        SimTime::from_secs(2000),
                    );
                    // Make room so the flexible job runs.
                    let running: Vec<_> = s
                        .jobs()
                        .filter(|j| j.state == dmr_slurm::JobState::Running)
                        .map(|j| j.id)
                        .collect();
                    s.complete(running[0], SimTime::from_secs(2000));
                    s.schedule(SimTime::from_secs(2000));
                    (s, id)
                },
                |(mut s, id)| black_box(s.decide_resize(id, SimTime::from_secs(2001))),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// The per-instant pending-order cache win: one scheduling instant issues
/// a FIFO cycle plus (with many flexible jobs at their reconfiguring
/// points) a burst of same-instant `pending_queue` consultations. Before
/// the cache every consultation recomputed all multifactor priorities and
/// re-sorted the deep queue; now only the first pays, the rest clone the
/// memoized order. `x1` measures the mandatory recompute, `x8` the
/// pattern the cache exists for — it must cost far less than 8 × `x1`.
fn bench_pending_order_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("pending_order");
    for pending in [50u32, 400] {
        for consults in [1u32, 8] {
            g.bench_function(format!("pending_queue_x{consults}_q{pending}"), |b| {
                b.iter_batched(
                    || deep_queue(pending),
                    |s| {
                        let now = SimTime::from_secs(2000);
                        for _ in 0..consults {
                            black_box(s.pending_queue(now));
                        }
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

fn bench_expand_protocol(c: &mut Criterion) {
    c.bench_function("expand_protocol_4to8", |b| {
        b.iter_batched(
            || {
                let mut s = Slurm::with_cluster(Cluster::new(64, 16));
                let id = s.submit(JobRequest::rigid("a", 4), SimTime::ZERO);
                s.schedule(SimTime::ZERO);
                (s, id)
            },
            |(mut s, id)| black_box(s.expand_protocol(id, 8, SimTime::from_secs(1))),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_cycles,
    bench_policy,
    bench_pending_order_cache,
    bench_expand_protocol
);
criterion_main!(benches);
