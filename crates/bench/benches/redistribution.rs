//! Redistribution costs: plan computation (pure) and execution over the
//! thread-backed MPI substrate (real data movement through the spawn
//! inter-communicator).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use dmr_mpi::{Comm, Universe};
use dmr_runtime::dist::BlockDist;
use dmr_runtime::redistribute::{recv_blocks, send_blocks};

fn bench_plans(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan");
    for (n, from, to) in [(1usize << 20, 8usize, 16usize), (1 << 20, 48, 12)] {
        g.bench_function(format!("plan_{n}el_{from}to{to}"), |b| {
            let a = BlockDist::new(n, from);
            let t = BlockDist::new(n, to);
            b.iter(|| black_box(a.plan_to(&t)))
        });
    }
    g.finish();
}

fn redistribute_once(n: usize, from: usize, to: usize) {
    Universe::run(from, move |mut comm| {
        let a = BlockDist::new(n, from);
        let t = BlockDist::new(n, to);
        let me = comm.rank();
        let data: Vec<f64> = a.range(me).map(|i| i as f64).collect();
        let entry = Arc::new(move |mut child: Comm| {
            let a = BlockDist::new(n, from);
            let t = BlockDist::new(n, to);
            let rank = child.rank();
            let parent = child.parent().expect("child");
            let block = recv_blocks::<f64>(parent, rank, &a, &t, 0).expect("recv");
            black_box(block);
            parent.send(&[1u8], 0, 9).expect("ack");
        });
        let mut inter = comm.spawn(to, entry).expect("spawn");
        send_blocks(&mut inter, me, &data, &a, &t, 0).expect("send");
        if me == 0 {
            for _ in 0..to {
                inter.recv::<u8>(None, Some(9)).expect("ack");
            }
        }
    });
}

fn bench_live_redistribution(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpi_redistribute");
    g.sample_size(10);
    for (n, from, to) in [
        (1usize << 18, 2usize, 4usize),
        (1 << 18, 4, 2),
        (1 << 20, 4, 8),
    ] {
        g.throughput(Throughput::Bytes((n * 8) as u64));
        g.bench_function(format!("{}MB_{from}to{to}", (n * 8) >> 20), |b| {
            b.iter(|| redistribute_once(n, from, to))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_plans, bench_live_redistribution);
criterion_main!(benches);
