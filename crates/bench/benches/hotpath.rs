//! Hot-path micro-benchmarks: each optimisation layer head-to-head with
//! its reference — node allocation, pending-order consultation, the EASY
//! backfill pass (reservation + reap), one full churn round across all
//! three scheduler paths, and the slab job table against the `BTreeMap`
//! it replaced. `repro --bench-json` measures the same contrast
//! end-to-end and appends to the `BENCH_sched.json` trajectory.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

use dmr_bench::hotpath;
use dmr_cluster::Cluster;
use dmr_sim::{SimTime, Span};
use dmr_slurm::{Job, JobArena, JobId, JobRequest, JobState, SchedIndex, Slurm, SlurmConfig};

fn modes() -> [(&'static str, SchedIndex); 3] {
    [
        ("arena", SchedIndex::Arena),
        ("indexed", SchedIndex::Indexed),
        ("scan", SchedIndex::ScanReference),
    ]
}

/// A 4096-node cluster with the low 4000 ids busy: linear selection must
/// reach past them for every grant.
fn busy_low_cluster(scan: bool) -> Cluster {
    let mut c = Cluster::new(4096, 16);
    c.use_scan_selection(scan);
    c.allocate(4000, 1).expect("fits");
    c
}

fn bench_allocate(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    for (label, mode) in modes() {
        g.bench_function(format!("allocate32_n4096_busy_{label}"), |b| {
            b.iter_batched(
                || busy_low_cluster(mode == SchedIndex::ScanReference),
                |mut c| black_box(c.allocate(32, 2).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn deep_queue(pending: u32, mode: SchedIndex) -> Slurm {
    let mut cfg = SlurmConfig::for_cluster(64);
    cfg.sched_index = mode;
    let mut s = Slurm::new(Cluster::new(64, 16), cfg);
    for i in 0..8 {
        s.submit(
            JobRequest::rigid(format!("run{i}"), 8)
                .with_expected_runtime(Span::from_secs(600 + i * 60)),
            SimTime::ZERO,
        );
    }
    s.schedule(SimTime::ZERO);
    for i in 0..pending {
        s.submit(
            JobRequest::rigid(format!("pend{i}"), 1 + (i * 7) % 32)
                .with_expected_runtime(Span::from_secs(120 + (u64::from(i) * 13) % 900)),
            SimTime::from_secs(1 + u64::from(i)),
        );
    }
    s
}

fn bench_pending_order(c: &mut Criterion) {
    let mut g = c.benchmark_group("pending_order");
    for pending in [1_000u32, 10_000] {
        for (label, mode) in modes() {
            g.bench_function(format!("rebuild_q{pending}_{label}"), |b| {
                b.iter_batched(
                    || deep_queue(pending, mode),
                    // A fresh instant misses the per-mutation cache, so
                    // this times one full order (re)build.
                    |s| black_box(s.pending_queue(SimTime::from_secs(99_999)).len()),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

fn bench_backfill(c: &mut Criterion) {
    let mut g = c.benchmark_group("backfill");
    for (label, mode) in modes() {
        g.bench_function(format!("pass_q4000_{label}"), |b| {
            b.iter_batched(
                || deep_queue(4_000, mode),
                |mut s| black_box(s.backfill_pass(SimTime::from_secs(2_000))),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_churn_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("churn");
    g.sample_size(3);
    for (label, mode) in modes() {
        g.bench_function(format!("n1024_q4000_{label}"), |b| {
            b.iter(|| black_box(hotpath::run_cell(1024, 4_000, mode, 50).events))
        });
    }
    g.finish();
}

/// A minimal pending-job record for the job-table contrast.
fn record(id: JobId, seq: u64) -> Job {
    Job {
        id,
        seq,
        detached_nodes: 0,
        name: String::new(),
        state: JobState::Pending,
        requested_nodes: 1 + (seq as u32 % 32),
        time_limit: None,
        expected_runtime: Span::from_secs(600),
        dependency: None,
        base_priority: 0,
        boosted: false,
        resize: None,
        submit_time: SimTime::from_secs(seq),
        start_time: None,
        end_time: None,
        reconfigurations: 0,
    }
}

/// The job-table contrast behind the arena conversion: fill 100k
/// records, then run a lookup + remove/reinsert churn sweep — once on
/// [`JobArena`] (slot-indexed, generation-checked) and once on the
/// `BTreeMap<JobId, Job>` the scheduler used to keep.
fn bench_job_table(c: &mut Criterion) {
    const JOBS: u64 = 100_000;
    let mut g = c.benchmark_group("job_table");
    g.sample_size(10);
    g.bench_function("churn100k_arena", |b| {
        b.iter_batched(
            || {
                let mut a = JobArena::new();
                let ids: Vec<JobId> = (0..JOBS)
                    .map(|seq| a.insert_with(|id| record(id, seq)))
                    .collect();
                (a, ids)
            },
            |(mut a, ids)| {
                let mut touched = 0u64;
                for id in &ids {
                    touched += u64::from(a[*id].requested_nodes);
                }
                for id in &ids[..1000] {
                    let seq = a[*id].seq;
                    a.remove(*id);
                    a.insert_with(|id| record(id, seq));
                }
                black_box((touched, a.len()))
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("churn100k_btreemap", |b| {
        b.iter_batched(
            || {
                let mut m = BTreeMap::new();
                let ids: Vec<JobId> = (0..JOBS)
                    .map(|seq| {
                        let id = JobId(seq);
                        m.insert(id, record(id, seq));
                        id
                    })
                    .collect();
                (m, ids)
            },
            |(mut m, ids)| {
                let mut touched = 0u64;
                for id in &ids {
                    touched += u64::from(m[id].requested_nodes);
                }
                for id in &ids[..1000] {
                    let rec = m.remove(id).expect("present");
                    m.insert(rec.id, rec);
                }
                black_box((touched, m.len()))
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_allocate,
    bench_pending_order,
    bench_backfill,
    bench_churn_round,
    bench_job_table
);
criterion_main!(benches);
