//! Hot-path micro-benchmarks: each incremental index head-to-head with
//! its pre-index scan oracle — node allocation, pending-order
//! consultation, the EASY backfill pass (reservation + reap), and one
//! full churn round. `repro --bench-json` measures the same contrast
//! end-to-end and writes the `BENCH_sched.json` trajectory.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dmr_bench::hotpath;
use dmr_cluster::Cluster;
use dmr_sim::{SimTime, Span};
use dmr_slurm::{JobRequest, SchedIndex, Slurm, SlurmConfig};

fn modes() -> [(&'static str, SchedIndex); 2] {
    [
        ("indexed", SchedIndex::Indexed),
        ("scan", SchedIndex::ScanReference),
    ]
}

/// A 4096-node cluster with the low 4000 ids busy: linear selection must
/// reach past them for every grant.
fn busy_low_cluster(scan: bool) -> Cluster {
    let mut c = Cluster::new(4096, 16);
    c.use_scan_selection(scan);
    c.allocate(4000, 1).expect("fits");
    c
}

fn bench_allocate(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    for (label, mode) in modes() {
        g.bench_function(format!("allocate32_n4096_busy_{label}"), |b| {
            b.iter_batched(
                || busy_low_cluster(mode == SchedIndex::ScanReference),
                |mut c| black_box(c.allocate(32, 2).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn deep_queue(pending: u32, mode: SchedIndex) -> Slurm {
    let mut cfg = SlurmConfig::for_cluster(64);
    cfg.sched_index = mode;
    let mut s = Slurm::new(Cluster::new(64, 16), cfg);
    for i in 0..8 {
        s.submit(
            JobRequest::rigid(format!("run{i}"), 8)
                .with_expected_runtime(Span::from_secs(600 + i * 60)),
            SimTime::ZERO,
        );
    }
    s.schedule(SimTime::ZERO);
    for i in 0..pending {
        s.submit(
            JobRequest::rigid(format!("pend{i}"), 1 + (i * 7) % 32)
                .with_expected_runtime(Span::from_secs(120 + (u64::from(i) * 13) % 900)),
            SimTime::from_secs(1 + u64::from(i)),
        );
    }
    s
}

fn bench_pending_order(c: &mut Criterion) {
    let mut g = c.benchmark_group("pending_order");
    for pending in [1_000u32, 10_000] {
        for (label, mode) in modes() {
            g.bench_function(format!("rebuild_q{pending}_{label}"), |b| {
                b.iter_batched(
                    || deep_queue(pending, mode),
                    // A fresh instant misses the per-mutation cache, so
                    // this times one full order (re)build.
                    |s| black_box(s.pending_queue(SimTime::from_secs(99_999)).len()),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

fn bench_backfill(c: &mut Criterion) {
    let mut g = c.benchmark_group("backfill");
    for (label, mode) in modes() {
        g.bench_function(format!("pass_q4000_{label}"), |b| {
            b.iter_batched(
                || deep_queue(4_000, mode),
                |mut s| black_box(s.backfill_pass(SimTime::from_secs(2_000))),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_churn_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("churn");
    g.sample_size(3);
    for (label, mode) in modes() {
        g.bench_function(format!("n1024_q4000_{label}"), |b| {
            b.iter(|| black_box(hotpath::run_cell(1024, 4_000, mode, 50).events))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_allocate,
    bench_pending_order,
    bench_backfill,
    bench_churn_round
);
criterion_main!(benches);
