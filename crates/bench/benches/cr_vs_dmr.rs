//! Figure 1 on real executions: the cost of one reconfiguration through
//! Checkpoint/Restart (file round-trip + full relaunch) versus the DMR
//! path (in-flight spawn + redistribution), on the data-heavy FS
//! application. The DMR bar must be decisively lower.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;

use dmr_apps::fs::FsApp;
use dmr_apps::malleable::run_malleable;
use dmr_checkpoint::{run_with_checkpoint_restart, CrSchedule, DirStore};
use dmr_runtime::dmr::{DmrAction, DmrSpec};

/// 16 MiB of state per run: enough that the serialize/write/relaunch/read
/// round-trip dominates the C/R side while criterion iterations stay
/// snappy.
const N: usize = 1 << 21;
const STEPS: u32 = 4;

fn app() -> Arc<FsApp> {
    Arc::new(FsApp::new(N, STEPS, Duration::from_micros(100)))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("reconfigure_4_to_2");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((N * 8) as u64));
    g.bench_function("dmr_path", |b| {
        b.iter(|| {
            run_malleable(
                app(),
                4,
                DmrSpec::new(1, 8),
                vec![DmrAction::NoAction, DmrAction::Shrink { to: 2 }],
            )
        })
    });
    g.bench_function("cr_path", |b| {
        b.iter(|| {
            let store = Arc::new(DirStore::temp().expect("store"));
            run_with_checkpoint_restart(
                app(),
                &CrSchedule {
                    phases: vec![(4, 2), (2, STEPS - 2)],
                },
                store,
                "bench",
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
