//! Energy accounting over machine power states.
//!
//! [`PowerMeter`] integrates watts over simulated time the same way the
//! metrics layer's `StepSeries` integrates utilization: piecewise-constant
//! between samples, advanced by a watermark. The driver samples after
//! every handled event, and power only changes at events (allocation,
//! release, power-down, wake), so the trapezoid-free rectangle sum is
//! exact — and because it is carried in integer watt-microseconds
//! (`u128`), it is bit-identical across scheduler index modes, telemetry
//! paths and thread counts.

use dmr_sim::SimTime;

use crate::classes::{ClassTable, MAX_CLASSES};

/// Integrates cluster power draw over simulated time.
///
/// Per class, every node is in exactly one of three operating points at
/// any instant: *busy* (allocated to a job), *off* (powered down to S5 by
/// an energy policy), or *idle* (on, unallocated). The meter is fed the
/// per-class busy and off counts at each sample and charges
/// `watts × elapsed µs` for the interval since the previous sample.
#[derive(Clone, Debug)]
pub struct PowerMeter {
    /// Per-class node counts (fixed by the class table).
    class_nodes: Vec<u32>,
    /// Per-class operating-point watts, precomputed from the table.
    watts_busy: Vec<u64>,
    watts_idle: Vec<u64>,
    watts_off: Vec<u64>,
    /// Watermark of the last sample; `None` until the first sample.
    last: Option<SimTime>,
    /// Time of the first sample (start of the metered window).
    start: Option<SimTime>,
    /// Total energy, watt-microseconds.
    energy_wus: u128,
    /// Per-class busy integral, node-microseconds (class utilization).
    busy_node_us: Vec<u128>,
}

impl PowerMeter {
    /// A meter for the given class layout, charging nothing until the
    /// first [`PowerMeter::sample`].
    pub fn new(table: &ClassTable) -> Self {
        let k = table.num_classes();
        assert!(k <= MAX_CLASSES);
        PowerMeter {
            class_nodes: (0..k).map(|c| table.class_nodes(c)).collect(),
            watts_busy: table.classes().iter().map(|c| c.watts_busy()).collect(),
            watts_idle: table.classes().iter().map(|c| c.watts_idle()).collect(),
            watts_off: table.classes().iter().map(|c| c.watts_off()).collect(),
            last: None,
            start: None,
            energy_wus: 0,
            busy_node_us: vec![0; k],
        }
    }

    /// Advances the watermark to `now`, charging the interval since the
    /// previous sample at the *previous* per-class counts — callers
    /// sample with the counts that were in force *up to* `now`, i.e.
    /// after the clock advanced but with `busy[c]`/`off[c]` describing
    /// the state being left behind is wrong; sample *after* applying the
    /// event's state change, passing the new counts, and the old counts
    /// were already charged by the previous call. Zero-length intervals
    /// charge exactly zero, so redundant samples cannot perturb the sum.
    ///
    /// `busy[c]` and `off[c]` are the class-`c` allocated and powered-down
    /// node counts; idle is derived as `nodes − busy − off`.
    pub fn sample(&mut self, now: SimTime, busy: &[u32], off: &[u32]) {
        debug_assert_eq!(busy.len(), self.class_nodes.len());
        debug_assert_eq!(off.len(), self.class_nodes.len());
        if self.start.is_none() {
            self.start = Some(now);
        }
        if let Some(last) = self.last {
            debug_assert!(now >= last, "power meter sampled backwards");
            let dt_us = now.0.saturating_sub(last.0) as u128;
            if dt_us > 0 {
                for c in 0..self.class_nodes.len() {
                    let b = busy[c].min(self.class_nodes[c]);
                    let o = off[c].min(self.class_nodes[c] - b);
                    let idle = self.class_nodes[c] - b - o;
                    let watts = self.watts_busy[c] * b as u64
                        + self.watts_idle[c] * idle as u64
                        + self.watts_off[c] * o as u64;
                    self.energy_wus += watts as u128 * dt_us;
                    self.busy_node_us[c] += b as u128 * dt_us;
                }
            }
        }
        self.last = Some(now);
    }

    /// Total energy charged so far, joules (1 W·µs = 1e-6 J).
    pub fn energy_j(&self) -> f64 {
        self.energy_wus as f64 / 1e6
    }

    /// Exact integer energy, watt-microseconds (determinism tests).
    pub fn energy_wus(&self) -> u128 {
        self.energy_wus
    }

    /// Mean power over the metered window, watts. Zero before two
    /// samples have established a window.
    pub fn avg_watts(&self) -> f64 {
        match (self.start, self.last) {
            (Some(start), Some(last)) if last > start => {
                self.energy_wus as f64 / (last.0 - start.0) as f64
            }
            _ => 0.0,
        }
    }

    /// Per-class busy fraction over the metered window:
    /// `busy node-µs / (class nodes × window µs)`. Empty before a window
    /// exists.
    pub fn class_utilization(&self) -> Vec<f64> {
        match (self.start, self.last) {
            (Some(start), Some(last)) if last > start => {
                let window = (last.0 - start.0) as u128;
                self.busy_node_us
                    .iter()
                    .zip(&self.class_nodes)
                    .map(|(&busy, &nodes)| {
                        if nodes == 0 {
                            0.0
                        } else {
                            busy as f64 / (nodes as u128 * window) as f64
                        }
                    })
                    .collect()
            }
            _ => vec![0.0; self.class_nodes.len()],
        }
    }

    /// Number of classes the meter tracks.
    pub fn num_classes(&self) -> usize {
        self.class_nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{ClassTable, MachineClass};

    #[test]
    fn integrates_rectangles_exactly() {
        let t = ClassTable::uniform(4, 16);
        let c = t.class(0);
        let mut m = PowerMeter::new(&t);
        // 10 s all idle, then 5 s with 3 busy.
        m.sample(SimTime(0), &[0], &[0]);
        m.sample(SimTime(10_000_000), &[0], &[0]);
        m.sample(SimTime(15_000_000), &[3], &[0]);
        let expect = 4 * c.watts_idle() as u128 * 10_000_000
            + (3 * c.watts_busy() as u64 + c.watts_idle()) as u128 * 5_000_000;
        assert_eq!(m.energy_wus(), expect);
        assert_eq!(m.avg_watts(), expect as f64 / 15_000_000.0);
        // Busy integral: 3 nodes × 5 s of a 4-node × 15 s window.
        let util = m.class_utilization();
        assert_eq!(util.len(), 1);
        assert!((util[0] - (3.0 * 5.0) / (4.0 * 15.0)).abs() < 1e-12);
    }

    #[test]
    fn off_nodes_charge_the_suspend_rate() {
        let t = ClassTable::uniform(2, 16);
        let c = t.class(0);
        let mut m = PowerMeter::new(&t);
        m.sample(SimTime(0), &[0], &[2]);
        m.sample(SimTime(1_000_000), &[0], &[2]);
        assert_eq!(m.energy_wus(), 2 * c.watts_off() as u128 * 1_000_000);
    }

    #[test]
    fn zero_dt_samples_are_inert() {
        let t = ClassTable::uniform(3, 16);
        let mut m1 = PowerMeter::new(&t);
        let mut m2 = PowerMeter::new(&t);
        for m in [&mut m1, &mut m2] {
            m.sample(SimTime(0), &[1], &[0]);
            m.sample(SimTime(500), &[2], &[0]);
        }
        // Redundant same-instant samples on m2 must not change anything.
        m2.sample(SimTime(500), &[2], &[0]);
        m2.sample(SimTime(500), &[2], &[0]);
        m1.sample(SimTime(900), &[2], &[1]);
        m2.sample(SimTime(900), &[2], &[1]);
        assert_eq!(m1.energy_wus(), m2.energy_wus());
        assert_eq!(m1.class_utilization(), m2.class_utilization());
    }

    #[test]
    fn heterogeneous_classes_meter_independently() {
        let gpu = MachineClass {
            name: "gpu",
            gpu: true,
            ..MachineClass::standard(32)
        };
        let t = ClassTable::new(&[(MachineClass::standard(16), 2), (gpu, 1)]);
        let mut m = PowerMeter::new(&t);
        m.sample(SimTime(0), &[0, 1], &[1, 0]);
        m.sample(SimTime(2_000_000), &[0, 1], &[1, 0]);
        let expect = (t.class(0).watts_idle() + t.class(0).watts_off()) as u128 * 2_000_000
            + t.class(1).watts_busy() as u128 * 2_000_000;
        assert_eq!(m.energy_wus(), expect);
        let util = m.class_utilization();
        assert_eq!(util, vec![0.0, 1.0]);
    }

    #[test]
    fn empty_meter_reports_zeros() {
        let t = ClassTable::uniform(4, 16);
        let m = PowerMeter::new(&t);
        assert_eq!(m.energy_j(), 0.0);
        assert_eq!(m.avg_watts(), 0.0);
        assert_eq!(m.class_utilization(), vec![0.0]);
    }
}
