//! Seeded, deterministic fault injection.
//!
//! Two faultload sources feed the driver with node-fail / node-repair
//! events:
//!
//! * [`FaultProcess`] — per-class exponential MTBF/MTTR processes drawn
//!   from a seeded [`rand::rngs::StdRng`]. Each machine class runs an
//!   independent failure clock whose rate is `class nodes / per-node
//!   MTBF`, so bigger classes fail proportionally more often; every
//!   failure schedules its own repair an `Exp(MTTR)` later. The entire
//!   event stream is a pure function of `(class table, rates, seed)`.
//! * [`FaultTrace`] — an explicit scripted list of events, for regression
//!   tests and for replaying a specific incident (`--faults trace:path`).
//!
//! Both are wrapped by [`FaultSource`], which the `dmr-core` driver pulls
//! one event at a time, mapping each onto [`crate::Cluster::fail_node`] /
//! [`crate::Cluster::repair_node`] transitions. The [`FaultLoad::None`]
//! source emits nothing and draws nothing — zero-fault runs stay
//! bit-identical to a build without this module.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dmr_sim::SimTime;
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::classes::ClassTable;
use crate::node::NodeId;

/// One injected fault event, in simulation time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultEvent {
    /// `node` goes down at `at` (and stays down until repaired).
    Fail { at: SimTime, node: NodeId },
    /// `node` is repaired at `at` and may accept work again.
    Repair { at: SimTime, node: NodeId },
}

impl FaultEvent {
    /// The instant the event fires.
    pub fn at(self) -> SimTime {
        match self {
            FaultEvent::Fail { at, .. } | FaultEvent::Repair { at, .. } => at,
        }
    }

    /// The node the event targets.
    pub fn node(self) -> NodeId {
        match self {
            FaultEvent::Fail { node, .. } | FaultEvent::Repair { node, .. } => node,
        }
    }
}

/// Faultload intensity presets. `Copy` so experiment configurations can
/// carry one by value; scripted traces are injected separately (they own
/// a `Vec`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FaultLoad {
    /// No injected faults. The oracle configuration: runs under `None`
    /// are bit-identical to pre-fault-injection behaviour.
    #[default]
    None,
    /// A few failures per long run: per-node MTBF 2×10⁶ s, MTTR 900 s.
    Rare,
    /// Sustained attrition: per-node MTBF 2×10⁵ s, MTTR 600 s.
    Harsh,
}

impl FaultLoad {
    /// The preset's rates, or `None` for the zero-fault load.
    pub fn rates(self) -> Option<FaultRates> {
        match self {
            FaultLoad::None => None,
            FaultLoad::Rare => Some(FaultRates {
                mtbf_s: 2.0e6,
                mttr_s: 900.0,
            }),
            FaultLoad::Harsh => Some(FaultRates {
                mtbf_s: 2.0e5,
                mttr_s: 600.0,
            }),
        }
    }

    /// Probability that one resize negotiation (the `MPI_Comm_spawn`
    /// path) fails from an injected fault. Zero for [`FaultLoad::None`],
    /// so zero-fault runs never draw from the protocol RNG.
    pub fn resize_fail_p(self) -> f64 {
        match self {
            FaultLoad::None => 0.0,
            FaultLoad::Rare => 0.02,
            FaultLoad::Harsh => 0.15,
        }
    }

    /// Short lowercase name, used in scenario names and CSV cells.
    pub fn name(self) -> &'static str {
        match self {
            FaultLoad::None => "none",
            FaultLoad::Rare => "rare",
            FaultLoad::Harsh => "harsh",
        }
    }

    /// Whether this is the zero-fault load.
    pub fn is_none(self) -> bool {
        self == FaultLoad::None
    }
}

/// Per-node failure/repair rates of a [`FaultProcess`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultRates {
    /// Mean time between failures of one node, seconds. A class of `n`
    /// nodes fails at rate `n / mtbf_s`.
    pub mtbf_s: f64,
    /// Mean time to repair one failed node, seconds.
    pub mttr_s: f64,
}

/// Heap entry for a scheduled repair: `(when, seq)` orders repairs
/// deterministically even when two land on the same microsecond.
type PendingRepair = Reverse<(SimTime, u64, NodeId)>;

/// A seeded stream of fail/repair events over a cluster's class layout.
///
/// Deterministic: the `n`-th event is a pure function of the construction
/// arguments, independent of wall clock, thread count, or how the cluster
/// reacts to earlier events (victims are drawn over the class's full id
/// range, not its currently-up subset — failing an already-down node is a
/// counted no-op at the cluster layer).
#[derive(Clone, Debug)]
pub struct FaultProcess {
    rng: StdRng,
    rates: FaultRates,
    /// Per-class `(first id, node count)`, dense ascending.
    ranges: Vec<(u32, u32)>,
    /// Per-class next failure instant.
    next_fail: Vec<SimTime>,
    /// Repairs scheduled by earlier failures.
    repairs: BinaryHeap<PendingRepair>,
    seq: u64,
}

impl FaultProcess {
    /// A process over `table`'s layout with the given rates and seed.
    pub fn new(table: &ClassTable, rates: FaultRates, seed: u64) -> Self {
        let ranges: Vec<(u32, u32)> = (0..table.num_classes())
            .map(|c| {
                let (start, end) = table.range(c);
                (start, end - start)
            })
            .collect();
        let mut p = FaultProcess {
            rng: StdRng::seed_from_u64(seed),
            rates,
            next_fail: vec![SimTime::ZERO; ranges.len()],
            ranges,
            repairs: BinaryHeap::new(),
            seq: 0,
        };
        for c in 0..p.ranges.len() {
            p.next_fail[c] = p.advance(SimTime::ZERO, c);
        }
        p
    }

    /// Draws `Exp(mean_s)` and returns `from + draw`, quantised to whole
    /// microseconds (at least one, so time strictly advances).
    fn exp_after(&mut self, from: SimTime, mean_s: f64) -> SimTime {
        let u: f64 = self.rng.random();
        let gap_s = -mean_s * (1.0 - u).ln();
        let micros = (gap_s * 1e6).round().max(1.0);
        SimTime(from.0.saturating_add(micros as u64))
    }

    /// Next failure instant for class `c` counted from `from`.
    fn advance(&mut self, from: SimTime, c: usize) -> SimTime {
        let nodes = self.ranges[c].1.max(1) as f64;
        let mean = self.rates.mtbf_s / nodes;
        self.exp_after(from, mean)
    }

    /// The next event in time order. Never returns `None` — the process
    /// is unbounded; the driver stops pulling when the workload drains.
    /// Ties on the same microsecond resolve repairs first (a node coming
    /// back is visible to a failure landing at the same instant), then
    /// lower class ids.
    pub fn next_event(&mut self) -> FaultEvent {
        let fail_c = (0..self.ranges.len())
            .filter(|&c| self.ranges[c].1 > 0)
            .min_by_key(|&c| (self.next_fail[c], c))
            .expect("class table has at least one class");
        let fail_at = self.next_fail[fail_c];
        if let Some(&Reverse((at, _, node))) = self.repairs.peek() {
            if at <= fail_at {
                self.repairs.pop();
                return FaultEvent::Repair { at, node };
            }
        }
        let (start, nodes) = self.ranges[fail_c];
        let node = NodeId(start + self.rng.random_range(0..nodes as u64) as u32);
        let repair_at = self.exp_after(fail_at, self.rates.mttr_s);
        self.repairs.push(Reverse((repair_at, self.seq, node)));
        self.seq += 1;
        self.next_fail[fail_c] = self.advance(fail_at, fail_c);
        FaultEvent::Fail { at: fail_at, node }
    }
}

/// An explicit, scripted event list (sorted by instant, stable).
///
/// Text form, one event per line (`#` comments and blank lines ignored):
///
/// ```text
/// # <seconds> fail|repair <node id>
/// 100 fail 3
/// 160 repair 3
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultTrace {
    events: Vec<FaultEvent>,
}

impl FaultTrace {
    /// A trace from explicit events; sorts by instant (stable, so equal
    /// instants keep their scripted order).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at());
        FaultTrace { events }
    }

    /// Parses the text form described on [`FaultTrace`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let err = |what: &str| format!("fault trace line {}: {what}: {line:?}", i + 1);
            let secs: f64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("expected <seconds> first"))?;
            let kind = parts.next().ok_or_else(|| err("expected fail|repair"))?;
            let node: u32 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("expected <node id>"))?;
            if parts.next().is_some() {
                return Err(err("trailing tokens"));
            }
            let at = SimTime::from_secs_f64(secs);
            let node = NodeId(node);
            events.push(match kind {
                "fail" => FaultEvent::Fail { at, node },
                "repair" => FaultEvent::Repair { at, node },
                _ => return Err(err("expected fail|repair")),
            });
        }
        Ok(FaultTrace::new(events))
    }

    /// The events in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The unified faultload source the driver pulls from.
#[derive(Clone, Debug)]
pub enum FaultSource {
    /// No faults; [`FaultSource::next_event`] always returns `None` and
    /// no RNG is ever constructed or drawn from.
    None,
    /// Seeded stochastic process (unbounded).
    Process(FaultProcess),
    /// Scripted trace (finite), with a cursor over the sorted events.
    Trace { trace: FaultTrace, next: usize },
}

impl FaultSource {
    /// The source for a preset load over `table`, seeded with `seed`.
    pub fn from_load(load: FaultLoad, table: &ClassTable, seed: u64) -> Self {
        match load.rates() {
            None => FaultSource::None,
            Some(rates) => FaultSource::Process(FaultProcess::new(table, rates, seed)),
        }
    }

    /// The source replaying a scripted trace.
    pub fn from_trace(trace: FaultTrace) -> Self {
        FaultSource::Trace { trace, next: 0 }
    }

    /// Pulls the next event, if any. Process sources never run dry;
    /// trace sources do.
    pub fn next_event(&mut self) -> Option<FaultEvent> {
        match self {
            FaultSource::None => None,
            FaultSource::Process(p) => Some(p.next_event()),
            FaultSource::Trace { trace, next } => {
                let e = trace.events.get(*next).copied();
                if e.is_some() {
                    *next += 1;
                }
                e
            }
        }
    }

    /// Whether this source can still emit events.
    pub fn is_live(&self) -> bool {
        match self {
            FaultSource::None => false,
            FaultSource::Process(_) => true,
            FaultSource::Trace { trace, next } => *next < trace.events.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{ClassTable, MachineClass};

    fn table() -> ClassTable {
        ClassTable::uniform(64, 16)
    }

    #[test]
    fn process_is_deterministic_per_seed() {
        let mut a = FaultProcess::new(&table(), FaultLoad::Harsh.rates().unwrap(), 7);
        let mut b = FaultProcess::new(&table(), FaultLoad::Harsh.rates().unwrap(), 7);
        for _ in 0..200 {
            assert_eq!(a.next_event(), b.next_event());
        }
        let mut c = FaultProcess::new(&table(), FaultLoad::Harsh.rates().unwrap(), 8);
        let sa: Vec<_> = (0..50).map(|_| a.next_event()).collect();
        let sc: Vec<_> = (0..50).map(|_| c.next_event()).collect();
        assert_ne!(sa, sc, "different seeds diverge");
    }

    #[test]
    fn process_emits_in_time_order_and_repairs_every_failure() {
        let mut p = FaultProcess::new(&table(), FaultLoad::Harsh.rates().unwrap(), 3);
        let mut last = SimTime::ZERO;
        let mut fails = 0u32;
        let mut repairs = 0u32;
        for _ in 0..500 {
            let e = p.next_event();
            assert!(e.at() >= last, "events must be nondecreasing in time");
            last = e.at();
            assert!(e.node().0 < 64, "victim within the class range");
            match e {
                FaultEvent::Fail { .. } => fails += 1,
                FaultEvent::Repair { .. } => repairs += 1,
            }
        }
        assert!(fails > 0 && repairs > 0);
        // Every repair pairs with an earlier failure.
        assert!(repairs <= fails);
    }

    #[test]
    fn per_class_rates_scale_with_class_size() {
        // A 60-node class should absorb ~6x the failures of a 10-node one.
        let std16 = MachineClass::standard(16);
        let t = ClassTable::new(&[(std16, 60), (std16, 10)]);
        let mut p = FaultProcess::new(&t, FaultLoad::Harsh.rates().unwrap(), 11);
        let (mut big, mut small) = (0u32, 0u32);
        for _ in 0..4000 {
            if let FaultEvent::Fail { node, .. } = p.next_event() {
                if node.0 < 60 {
                    big += 1;
                } else {
                    small += 1;
                }
            }
        }
        assert!(
            big > small * 3,
            "big class fails more often: {big} vs {small}"
        );
        assert!(small > 0, "small class still fails");
    }

    #[test]
    fn trace_parses_sorts_and_replays() {
        let t =
            FaultTrace::parse("# incident replay\n200 repair 5\n100 fail 5\n\n150 fail 9 # mid\n")
                .unwrap();
        assert_eq!(t.len(), 3);
        let mut src = FaultSource::from_trace(t);
        assert_eq!(
            src.next_event(),
            Some(FaultEvent::Fail {
                at: SimTime::from_secs(100),
                node: NodeId(5)
            })
        );
        assert_eq!(
            src.next_event(),
            Some(FaultEvent::Fail {
                at: SimTime::from_secs(150),
                node: NodeId(9)
            })
        );
        assert!(src.is_live());
        assert_eq!(
            src.next_event(),
            Some(FaultEvent::Repair {
                at: SimTime::from_secs(200),
                node: NodeId(5)
            })
        );
        assert_eq!(src.next_event(), None);
        assert!(!src.is_live());
    }

    #[test]
    fn trace_parse_rejects_garbage() {
        assert!(FaultTrace::parse("100 explode 3").is_err());
        assert!(FaultTrace::parse("abc fail 3").is_err());
        assert!(FaultTrace::parse("100 fail").is_err());
        assert!(FaultTrace::parse("100 fail 3 4").is_err());
    }

    #[test]
    fn none_source_is_inert() {
        let mut src = FaultSource::from_load(FaultLoad::None, &table(), 42);
        assert!(!src.is_live());
        assert_eq!(src.next_event(), None);
    }
}
