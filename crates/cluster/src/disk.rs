//! Shared parallel-filesystem cost model for the checkpoint/restart
//! baseline.
//!
//! C/R-based reconfiguration (the approach Figure 1 compares against) must
//! write the full application state to the shared filesystem, tear the job
//! down, requeue it at the new size, and read the state back. The filesystem
//! is shared, so aggregate bandwidth does not scale with the writer count
//! beyond a small striping factor — this is what makes C/R 30–80× more
//! expensive than runtime redistribution in the paper's measurements.

use dmr_sim::Span;

/// GPFS-like shared filesystem model.
#[derive(Clone, Copy, Debug)]
pub struct DiskModel {
    /// Aggregate write bandwidth in bytes/second (shared by all writers).
    pub write_bandwidth_bps: f64,
    /// Aggregate read bandwidth in bytes/second.
    pub read_bandwidth_bps: f64,
    /// Per-file metadata/open/close overhead in seconds.
    pub metadata_s: f64,
    /// Cost of tearing down and relaunching the job via the batch system
    /// (requeue, allocation, full `mpirun` start-up), seconds. This charge
    /// is what dominates the "spawning" bars for C/R in Figure 1.
    pub relaunch_base_s: f64,
    /// Additional relaunch cost per process, seconds.
    pub relaunch_per_proc_s: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel::gpfs()
    }
}

impl DiskModel {
    /// Conservative GPFS-era figures: ~2 GB/s aggregate write, ~3 GB/s read,
    /// and a multi-second relaunch (typical of production batch restarts).
    pub fn gpfs() -> Self {
        DiskModel {
            write_bandwidth_bps: 2.0e9,
            read_bandwidth_bps: 3.0e9,
            metadata_s: 0.08,
            relaunch_base_s: 5.0,
            relaunch_per_proc_s: 0.3,
        }
    }

    /// Time for `writers` ranks to write `total_bytes` of checkpoint state.
    pub fn write_time(&self, total_bytes: u64, writers: u32) -> Span {
        Span::from_secs_f64(
            self.metadata_s * writers.max(1) as f64 + total_bytes as f64 / self.write_bandwidth_bps,
        )
    }

    /// Time for `readers` ranks to read `total_bytes` back.
    pub fn read_time(&self, total_bytes: u64, readers: u32) -> Span {
        Span::from_secs_f64(
            self.metadata_s * readers.max(1) as f64 + total_bytes as f64 / self.read_bandwidth_bps,
        )
    }

    /// Time to tear down and relaunch the job at `new_procs` processes.
    pub fn relaunch_time(&self, new_procs: u32) -> Span {
        Span::from_secs_f64(self.relaunch_base_s + self.relaunch_per_proc_s * new_procs as f64)
    }

    /// Full checkpoint-and-reconfigure cost: write state at the old size,
    /// relaunch at the new size, read state back.
    pub fn cr_reconfigure_time(&self, total_bytes: u64, src_procs: u32, dst_procs: u32) -> Span {
        self.write_time(total_bytes, src_procs)
            + self.relaunch_time(dst_procs)
            + self.read_time(total_bytes, dst_procs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn write_and_read_scale_with_bytes() {
        let d = DiskModel::gpfs();
        assert!(d.write_time(2 * GB, 8) > d.write_time(GB, 8));
        assert!(d.read_time(2 * GB, 8) > d.read_time(GB, 8));
    }

    #[test]
    fn metadata_scales_with_ranks() {
        let d = DiskModel::gpfs();
        assert!(d.write_time(GB, 48) > d.write_time(GB, 4));
    }

    #[test]
    fn cr_is_much_slower_than_dmr_network_path() {
        // The calibration target behind Figure 1: C/R reconfiguration is
        // well over an order of magnitude costlier than the DMR path.
        let d = DiskModel::gpfs();
        let net = crate::NetworkModel::fdr10();
        for &(src, dst) in &[(48u32, 12u32), (48, 24), (48, 48)] {
            let cr = d.cr_reconfigure_time(GB, src, dst).as_secs_f64();
            let dmr = net.dmr_reconfigure_time(GB, src, dst).as_secs_f64();
            let ratio = cr / dmr;
            assert!(ratio > 20.0, "{src}->{dst}: ratio {ratio} too small");
        }
    }
}
