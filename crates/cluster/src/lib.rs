//! # dmr-cluster — the hardware model
//!
//! Models the machine the paper ran on (MareNostrum 3: 65 compute nodes of
//! two 8-core Xeon E5-2670, InfiniBand FDR10, a shared parallel filesystem)
//! as three independent pieces:
//!
//! * [`cluster::Cluster`] — node inventory and allocation bookkeeping. This
//!   is what the Slurm layer (`dmr-slurm`) allocates from.
//! * [`network::NetworkModel`] — transfer-time estimates for point-to-point
//!   messages, block redistribution between process sets, and
//!   `MPI_Comm_spawn` launch costs.
//! * [`disk::DiskModel`] — shared-filesystem cost model used by the
//!   checkpoint/restart baseline (Figure 1).
//!
//! The models are deliberately simple, first-order (latency + bandwidth)
//! approximations: the paper's evaluation quantities are scheduling-level
//! outcomes, and these models only need to charge *plausible, consistently
//! ordered* costs for reconfiguration events.

pub mod classes;
pub mod cluster;
pub mod disk;
pub mod faults;
pub mod freeset;
pub mod network;
pub mod node;
pub mod power;

pub use classes::{ClassConstraint, ClassId, ClassTable, MachineClass, MAX_CLASSES};
pub use cluster::{AllocError, Cluster, FailOutcome};
pub use disk::DiskModel;
pub use faults::{FaultEvent, FaultLoad, FaultProcess, FaultRates, FaultSource, FaultTrace};
pub use freeset::FreeSet;
pub use network::NetworkModel;
pub use node::{NodeId, NodeState};
pub use power::PowerMeter;

/// Number of compute nodes in the paper's testbed (§VII-A).
pub const MARENOSTRUM_NODES: u32 = 65;
/// Cores per node in the paper's testbed (two 8-core Xeon E5-2670).
pub const MARENOSTRUM_CORES_PER_NODE: u32 = 16;
