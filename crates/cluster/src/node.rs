//! Compute-node identity and state.

use std::fmt;

/// Identifier of a compute node (dense, 0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{:03}", self.0)
    }
}

/// Administrative state of a node. Jobs may only be placed on `Up` nodes;
/// `Drained` nodes finish their current allocation but accept no new one.
/// `Off` nodes were powered down to the S5 suspend state by an energy
/// policy: they draw suspend power and must be woken (with a latency)
/// before accepting work again.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum NodeState {
    #[default]
    Up,
    Drained,
    Down,
    Off,
}

impl NodeState {
    pub fn accepts_new_work(self) -> bool {
        matches!(self, NodeState::Up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", NodeId(7)), "node007");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
    }

    #[test]
    fn only_up_accepts_work() {
        assert!(NodeState::Up.accepts_new_work());
        assert!(!NodeState::Drained.accepts_new_work());
        assert!(!NodeState::Down.accepts_new_work());
        assert!(!NodeState::Off.accepts_new_work());
    }
}
