//! First-order network cost model (latency + bandwidth).
//!
//! Calibrated to InfiniBand FDR10 as in the paper's testbed: ~1.5 µs MPI
//! latency, ~5 GB/s effective per-node injection bandwidth. The model
//! charges time for three reconfiguration-related operations:
//!
//! * point-to-point transfers,
//! * block redistribution of a dataset between an old and a new process set
//!   (the runtime-managed data movement of the DMR approach), and
//! * `MPI_Comm_spawn` process launch.

use dmr_sim::Span;

/// Latency/bandwidth model of the cluster interconnect.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// One-way small-message latency in seconds.
    pub latency_s: f64,
    /// Effective per-node injection/ejection bandwidth in bytes/second.
    pub node_bandwidth_bps: f64,
    /// Fixed cost of an `MPI_Comm_spawn` invocation (connection set-up,
    /// PMI exchange), seconds.
    pub spawn_base_s: f64,
    /// Additional cost per spawned process, seconds (daemon fork/exec and
    /// wire-up on each target node).
    pub spawn_per_proc_s: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::fdr10()
    }
}

impl NetworkModel {
    /// InfiniBand FDR10 (the paper's fabric): 40 Gb/s signalling, ~5 GB/s
    /// usable per node, microsecond-scale latency.
    pub fn fdr10() -> Self {
        NetworkModel {
            latency_s: 1.5e-6,
            node_bandwidth_bps: 5.0e9,
            spawn_base_s: 0.3,
            spawn_per_proc_s: 0.002,
        }
    }

    /// Time to move `bytes` point-to-point between two nodes.
    pub fn ptp_time(&self, bytes: u64) -> Span {
        Span::from_secs_f64(self.latency_s + bytes as f64 / self.node_bandwidth_bps)
    }

    /// Time to launch `procs` new processes with `MPI_Comm_spawn`.
    ///
    /// The DMR path spawns onto an allocation that is already warm (the
    /// resizer-job protocol has placed the nodes); only process launch and
    /// wire-up are charged — this is the quantity Figure 1 contrasts with
    /// the checkpoint/restart path, which must tear the job down and requeue
    /// it.
    pub fn spawn_time(&self, procs: u32) -> Span {
        Span::from_secs_f64(self.spawn_base_s + self.spawn_per_proc_s * procs as f64)
    }

    /// Time to redistribute a block-distributed dataset of `total_bytes`
    /// from `src_procs` to `dst_procs` processes.
    ///
    /// Under a block distribution, a `min/max` fraction of the data is
    /// already resident on surviving ranks, so only
    /// `total * (1 - min(p,q)/max(p,q))` bytes cross the wire. The
    /// bottleneck is the smaller process set (each of its members must
    /// source or sink `moved/min(p,q)` bytes), plus one latency term per
    /// peer contacted (the expand/shrink `factor`).
    pub fn redistribution_time(&self, total_bytes: u64, src_procs: u32, dst_procs: u32) -> Span {
        if src_procs == 0 || dst_procs == 0 || total_bytes == 0 || src_procs == dst_procs {
            return Span::ZERO;
        }
        let p = src_procs.min(dst_procs) as f64;
        let q = src_procs.max(dst_procs) as f64;
        let moved = total_bytes as f64 * (1.0 - p / q);
        let per_node = moved / p;
        let peers = (q / p).ceil();
        Span::from_secs_f64(self.latency_s * peers + per_node / self.node_bandwidth_bps)
    }

    /// Total reconfiguration cost on the DMR path: spawn the new process set
    /// and redistribute the dataset.
    pub fn dmr_reconfigure_time(&self, total_bytes: u64, src_procs: u32, dst_procs: u32) -> Span {
        let spawned = if dst_procs > src_procs {
            // The paper reuses original nodes: only the delta is spawned...
            // except that MPI_Comm_spawn recreates the full child set (the
            // new communicator has dst_procs ranks), so charge all of them.
            dst_procs
        } else {
            dst_procs
        };
        self.spawn_time(spawned) + self.redistribution_time(total_bytes, src_procs, dst_procs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn ptp_scales_with_size() {
        let net = NetworkModel::fdr10();
        let t1 = net.ptp_time(GB);
        let t2 = net.ptp_time(2 * GB);
        assert!(t2 > t1);
        // 1 GiB at 5 GB/s ≈ 0.21 s
        assert!((t1.as_secs_f64() - (GB as f64 / 5.0e9)).abs() < 1e-3);
    }

    #[test]
    fn redistribution_zero_cases() {
        let net = NetworkModel::fdr10();
        assert_eq!(net.redistribution_time(GB, 4, 4), Span::ZERO);
        assert_eq!(net.redistribution_time(0, 2, 4), Span::ZERO);
        assert_eq!(net.redistribution_time(GB, 0, 4), Span::ZERO);
    }

    #[test]
    fn redistribution_symmetric_in_direction() {
        // Block redistribution moves the same bytes whether expanding
        // or shrinking between the same two sizes.
        let net = NetworkModel::fdr10();
        let e = net.redistribution_time(GB, 8, 16);
        let s = net.redistribution_time(GB, 16, 8);
        assert_eq!(e, s);
    }

    #[test]
    fn bigger_resize_moves_more_data() {
        let net = NetworkModel::fdr10();
        let small = net.redistribution_time(GB, 16, 8); // half moves
        let large = net.redistribution_time(GB, 16, 2); // 7/8 moves
        assert!(large > small, "{large:?} vs {small:?}");
    }

    #[test]
    fn spawn_cost_linear_in_procs() {
        let net = NetworkModel::fdr10();
        let a = net.spawn_time(10).as_secs_f64();
        let b = net.spawn_time(20).as_secs_f64();
        assert!((b - a - 10.0 * net.spawn_per_proc_s).abs() < 1e-9);
    }

    #[test]
    fn dmr_reconfigure_combines_costs() {
        let net = NetworkModel::fdr10();
        let total = net.dmr_reconfigure_time(GB, 8, 16);
        assert!(total >= net.spawn_time(16));
        assert!(total >= net.redistribution_time(GB, 8, 16));
    }
}
