//! Sorted interval set of free node ids.
//!
//! The allocation hot path wants "the `n` lowest-numbered placeable
//! nodes" without walking the whole inventory. [`FreeSet`] keeps the free
//! ids as maximal half-open runs `[start, end)` in a `BTreeMap`, so
//! taking the lowest `n` ids costs O(k + log r) for `k` granted nodes
//! spread over the first runs (r = number of runs), and releasing a node
//! is an O(log r) insert-with-merge. Contiguous clusters — the common
//! case under the paper's `select/linear` placement — collapse to a
//! handful of runs regardless of node count.

use std::collections::BTreeMap;

use crate::node::NodeId;

/// A sorted set of node ids stored as maximal `[start, end)` runs.
#[derive(Clone, Debug, Default)]
pub struct FreeSet {
    /// Run start -> run end (exclusive). Runs are disjoint, non-empty and
    /// non-adjacent (adjacent runs are merged on insert).
    runs: BTreeMap<u32, u32>,
    len: u32,
}

impl FreeSet {
    /// The empty set.
    pub fn new() -> Self {
        FreeSet::default()
    }

    /// The full set `{0, 1, …, n-1}` — one run.
    pub fn full(n: u32) -> Self {
        let mut runs = BTreeMap::new();
        if n > 0 {
            runs.insert(0, n);
        }
        FreeSet { runs, len: n }
    }

    /// Number of ids in the set.
    pub fn len(&self) -> u32 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of maximal runs (fragmentation metric; test aid).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: u32) -> bool {
        self.runs
            .range(..=id)
            .next_back()
            .is_some_and(|(_, &end)| id < end)
    }

    /// Inserts `id`, merging with adjacent runs. Inserting a present id is
    /// a logic error (debug assertion); the set stays consistent either
    /// way.
    pub fn insert(&mut self, id: u32) {
        debug_assert!(!self.contains(id), "inserting present id {id}");
        if self.contains(id) {
            return;
        }
        let extends_pred = matches!(
            self.runs.range_mut(..=id).next_back(),
            Some((_, end)) if *end == id
        );
        if extends_pred {
            let succ_end = self.runs.remove(&(id + 1));
            let (_, end) = self
                .runs
                .range_mut(..=id)
                .next_back()
                .expect("predecessor run exists");
            *end = succ_end.unwrap_or(id + 1);
        } else if let Some(succ_end) = self.runs.remove(&(id + 1)) {
            self.runs.insert(id, succ_end);
        } else {
            self.runs.insert(id, id + 1);
        }
        self.len += 1;
    }

    /// Inserts the whole run `[start, end)` at once, merging with the
    /// adjacent runs. The ids must all be absent (debug assertion) — this
    /// is the bulk-release hot path: returning a completed job's `n`
    /// contiguous nodes is one O(log r) splice instead of `n`
    /// insert-with-merge calls.
    pub fn insert_run(&mut self, start: u32, end: u32) {
        debug_assert!(start < end, "empty run [{start}, {end})");
        debug_assert!(
            (start..end).all(|id| !self.contains(id)),
            "run [{start}, {end}) overlaps the set"
        );
        let mut lo = start;
        let mut hi = end;
        if let Some((&ps, &pe)) = self.runs.range(..start).next_back() {
            if pe == start {
                self.runs.remove(&ps);
                lo = ps;
            }
        }
        if let Some(&se) = self.runs.get(&end) {
            self.runs.remove(&end);
            hi = se;
        }
        self.runs.insert(lo, hi);
        self.len += end - start;
    }

    /// Removes `id` if present (splitting its run), returning whether it
    /// was.
    pub fn remove(&mut self, id: u32) -> bool {
        let Some((&start, &end)) = self.runs.range(..=id).next_back() else {
            return false;
        };
        if id >= end {
            return false;
        }
        self.runs.remove(&start);
        if start < id {
            self.runs.insert(start, id);
        }
        if id + 1 < end {
            self.runs.insert(id + 1, end);
        }
        self.len -= 1;
        true
    }

    /// Removes and returns the `n` lowest ids (fewer if the set runs out),
    /// ascending. This is the linear-selection hot path: whole runs are
    /// consumed per step, so the cost is O(runs touched + log r), not
    /// O(total nodes).
    pub fn take_lowest(&mut self, n: u32) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(n as usize);
        while (out.len() as u32) < n {
            let Some((&start, &end)) = self.runs.iter().next() else {
                break;
            };
            let take = (n - out.len() as u32).min(end - start);
            out.extend((start..start + take).map(NodeId));
            self.runs.remove(&start);
            if start + take < end {
                self.runs.insert(start + take, end);
            }
            self.len -= take;
        }
        out
    }

    /// Removes and returns the `n` highest ids (fewer if the set runs
    /// out), ascending. The mirror of [`FreeSet::take_lowest`], used by
    /// power-down: with classes ordered efficient-first in ascending id
    /// ranges, the highest free ids are the least useful nodes to keep
    /// warm.
    pub fn take_highest(&mut self, n: u32) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(n as usize);
        while (out.len() as u32) < n {
            let Some((&start, &end)) = self.runs.iter().next_back() else {
                break;
            };
            let take = (n - out.len() as u32).min(end - start);
            out.extend((end - take..end).map(NodeId));
            if end - take > start {
                *self.runs.get_mut(&start).expect("run exists") = end - take;
            } else {
                self.runs.remove(&start);
            }
            self.len -= take;
        }
        out.sort_unstable();
        out
    }

    /// All ids, ascending (invariant checks and tests).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.runs.iter().flat_map(|(&s, &e)| (s..e).map(NodeId))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(s: &FreeSet) -> Vec<u32> {
        s.iter().map(|n| n.0).collect()
    }

    #[test]
    fn full_set_is_one_run() {
        let s = FreeSet::full(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.run_count(), 1);
        assert_eq!(ids(&s), vec![0, 1, 2, 3, 4]);
        assert_eq!(FreeSet::full(0).run_count(), 0);
    }

    #[test]
    fn remove_splits_and_insert_merges() {
        let mut s = FreeSet::full(10);
        assert!(s.remove(4));
        assert_eq!(s.run_count(), 2);
        assert!(!s.contains(4));
        assert!(!s.remove(4), "double remove");
        // Reinsert merges the two runs back into one.
        s.insert(4);
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn insert_merges_only_adjacent() {
        let mut s = FreeSet::new();
        s.insert(5);
        s.insert(9);
        assert_eq!(s.run_count(), 2);
        s.insert(7); // adjacent to neither
        assert_eq!(s.run_count(), 3);
        s.insert(6); // bridges 5..6 and 7..8
        assert_eq!(s.run_count(), 2);
        s.insert(8); // bridges everything
        assert_eq!(s.run_count(), 1);
        assert_eq!(ids(&s), vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn insert_run_merges_both_neighbours() {
        let mut s = FreeSet::new();
        s.insert_run(0, 3);
        s.insert_run(7, 10);
        assert_eq!(s.run_count(), 2);
        assert_eq!(s.len(), 6);
        // Bridges both: one run 0..10.
        s.insert_run(3, 7);
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.len(), 10);
        assert_eq!(ids(&s), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn insert_run_matches_per_id_inserts() {
        // Drive the same interleaved insert/remove pattern through the
        // run and per-id paths; the sets must be identical.
        let mut runs = FreeSet::new();
        let mut per_id = FreeSet::new();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut absent: Vec<u32> = (0..256).collect();
        for _ in 0..300 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if absent.is_empty() {
                break;
            }
            let i = (x as usize) % absent.len();
            let start = absent[i];
            let mut end = start + 1;
            while end < 256 && absent.contains(&end) && (end - start) < 5 {
                end += 1;
            }
            runs.insert_run(start, end);
            for id in start..end {
                per_id.insert(id);
            }
            absent.retain(|&id| !(start..end).contains(&id));
            assert_eq!(ids(&runs), ids(&per_id));
            assert_eq!(runs.run_count(), per_id.run_count());
            assert_eq!(runs.len(), per_id.len());
        }
    }

    #[test]
    fn take_lowest_spans_runs() {
        let mut s = FreeSet::full(10);
        for id in [0, 3, 4, 8] {
            s.remove(id);
        }
        // Free: 1 2 | 5 6 7 | 9
        let got: Vec<u32> = s.take_lowest(4).into_iter().map(|n| n.0).collect();
        assert_eq!(got, vec![1, 2, 5, 6]);
        assert_eq!(ids(&s), vec![7, 9]);
        // Taking more than remains returns what exists.
        let got: Vec<u32> = s.take_lowest(5).into_iter().map(|n| n.0).collect();
        assert_eq!(got, vec![7, 9]);
        assert!(s.is_empty());
    }

    #[test]
    fn take_lowest_partial_run_keeps_tail() {
        let mut s = FreeSet::full(8);
        let got: Vec<u32> = s.take_lowest(3).into_iter().map(|n| n.0).collect();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(s.run_count(), 1);
        assert_eq!(ids(&s), vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn take_highest_spans_runs() {
        let mut s = FreeSet::full(10);
        for id in [0, 3, 4, 8] {
            s.remove(id);
        }
        // Free: 1 2 | 5 6 7 | 9
        let got: Vec<u32> = s.take_highest(3).into_iter().map(|n| n.0).collect();
        assert_eq!(got, vec![6, 7, 9]);
        assert_eq!(ids(&s), vec![1, 2, 5]);
        // Taking more than remains returns what exists.
        let got: Vec<u32> = s.take_highest(5).into_iter().map(|n| n.0).collect();
        assert_eq!(got, vec![1, 2, 5]);
        assert!(s.is_empty());
    }

    #[test]
    fn take_highest_partial_run_keeps_head() {
        let mut s = FreeSet::full(8);
        let got: Vec<u32> = s.take_highest(3).into_iter().map(|n| n.0).collect();
        assert_eq!(got, vec![5, 6, 7]);
        assert_eq!(s.run_count(), 1);
        assert_eq!(ids(&s), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn scales_to_65k_nodes_without_fragment_blowup() {
        // The 65,536-node bench grid cell: a full machine is one run, a
        // full drain-and-refill stays one run, and nothing overflows.
        let mut s = FreeSet::full(65_536);
        assert_eq!(s.len(), 65_536);
        assert_eq!(s.run_count(), 1);
        let got = s.take_lowest(65_536);
        assert_eq!(got.len(), 65_536);
        assert!(s.is_empty());
        for id in 0..65_536 {
            s.insert(id);
        }
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.len(), 65_536);
    }

    #[test]
    fn randomised_ops_match_reference_set() {
        use std::collections::BTreeSet;
        let mut s = FreeSet::new();
        let mut reference = BTreeSet::new();
        let mut x: u64 = 0x2545_F491_4F6C_DD1D;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let id = (x % 64) as u32;
            if x & (1 << 40) == 0 {
                if !reference.contains(&id) {
                    s.insert(id);
                    reference.insert(id);
                }
            } else {
                assert_eq!(s.remove(id), reference.remove(&id));
            }
            assert_eq!(s.len() as usize, reference.len());
        }
        assert_eq!(ids(&s), reference.iter().copied().collect::<Vec<_>>());
    }
}
