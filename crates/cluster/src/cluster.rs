//! Node inventory and allocation bookkeeping.
//!
//! Allocation is by whole nodes, matching the paper (MPI ranks are placed one
//! per node; intra-node parallelism belongs to OpenMP/OmpSs and is invisible
//! to the resource manager). Owners are opaque `u64` tags chosen by the
//! caller — `dmr-slurm` uses job ids — so this crate stays free of scheduler
//! concepts.

use std::collections::BTreeMap;

use crate::freeset::FreeSet;
use crate::node::{NodeId, NodeState};

/// Errors from allocation requests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// Fewer free nodes than requested.
    Insufficient { requested: u32, free: u32 },
    /// A specific node was requested but is busy or not up.
    NodeBusy(NodeId),
    /// The owner tag is unknown (release/shrink of a non-allocated owner).
    UnknownOwner(u64),
    /// Shrink would release more nodes than the owner holds.
    ShrinkTooLarge { held: u32, release: u32 },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Insufficient { requested, free } => {
                write!(f, "requested {requested} nodes but only {free} free")
            }
            AllocError::NodeBusy(n) => write!(f, "{n} is busy or unavailable"),
            AllocError::UnknownOwner(o) => write!(f, "owner {o} holds no allocation"),
            AllocError::ShrinkTooLarge { held, release } => {
                write!(f, "cannot release {release} of {held} held nodes")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// The cluster: a set of nodes, each either free or owned by exactly one
/// owner tag.
///
/// Node selection is *linear*: the lowest-numbered free nodes are taken
/// first, mirroring Slurm's `select/linear` plug-in configured in the paper.
/// This also keeps simulations deterministic.
#[derive(Clone, Debug)]
pub struct Cluster {
    states: Vec<NodeState>,
    owner: Vec<Option<u64>>,
    /// Owner -> sorted list of held nodes. BTreeMap keeps iteration (and
    /// therefore any derived event order) deterministic.
    held: BTreeMap<u64, Vec<NodeId>>,
    /// The placeable (unowned, accepting-work) ids as a sorted run set;
    /// allocation takes the lowest run instead of scanning all nodes.
    free: FreeSet,
    free_count: u32,
    /// Unowned nodes not accepting work (drained / down), maintained so
    /// [`Cluster::allocated_nodes`] is O(1) instead of a zip-scan.
    unavailable_count: u32,
    cores_per_node: u32,
    /// Equivalence-oracle knob: select granted nodes with the pre-index
    /// full scan instead of the run set (results are identical; only the
    /// cost differs). See [`Cluster::use_scan_selection`].
    scan_selection: bool,
}

/// Appends `granted` to the sorted `held` list, skipping the re-sort in
/// the common case where the appended run is itself ascending and starts
/// above the current tail (lowest-id-first selection grants ascending
/// runs, and a job's later grants usually sit above its first ones). The
/// check is O(grant) against the O(held log held) sort it avoids.
fn append_held(held: &mut Vec<NodeId>, granted: &[NodeId]) {
    let in_order = granted.windows(2).all(|w| w[0] <= w[1])
        && match (held.last(), granted.first()) {
            (Some(&last), Some(&first)) => last < first,
            _ => true,
        };
    held.extend_from_slice(granted);
    if !in_order {
        held.sort_unstable();
    }
}

impl Cluster {
    /// A cluster of `nodes` identical nodes, all up and free.
    pub fn new(nodes: u32, cores_per_node: u32) -> Self {
        Cluster {
            states: vec![NodeState::Up; nodes as usize],
            owner: vec![None; nodes as usize],
            held: BTreeMap::new(),
            free: FreeSet::full(nodes),
            free_count: nodes,
            unavailable_count: 0,
            cores_per_node,
            scan_selection: false,
        }
    }

    /// Switches node selection in [`Cluster::allocate`] to the pre-index
    /// O(total nodes) scan. The scan is the *reference implementation*:
    /// it grants exactly the same nodes as the run-set path (pinned by
    /// tests), and exists so benchmarks can measure the index win and
    /// equivalence tests can hold the old behaviour up as an oracle.
    pub fn use_scan_selection(&mut self, scan: bool) {
        self.scan_selection = scan;
    }

    /// The paper's testbed: 65 nodes × 16 cores.
    pub fn marenostrum() -> Self {
        Cluster::new(crate::MARENOSTRUM_NODES, crate::MARENOSTRUM_CORES_PER_NODE)
    }

    pub fn total_nodes(&self) -> u32 {
        self.states.len() as u32
    }

    pub fn cores_per_node(&self) -> u32 {
        self.cores_per_node
    }

    /// Nodes currently free *and* accepting work.
    pub fn free_nodes(&self) -> u32 {
        self.free_count
    }

    /// Nodes currently owned by some allocation. O(1): free and
    /// unavailable counts are maintained at every transition instead of
    /// being recounted by a scan (this is sampled per metrics event).
    pub fn allocated_nodes(&self) -> u32 {
        self.total_nodes() - self.free_count - self.unavailable_count
    }

    /// Owner of a node, if allocated.
    pub fn owner_of(&self, node: NodeId) -> Option<u64> {
        self.owner.get(node.index()).copied().flatten()
    }

    /// Nodes held by `owner` (sorted ascending), empty if none.
    pub fn nodes_of(&self, owner: u64) -> &[NodeId] {
        self.held.get(&owner).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of nodes held by `owner`.
    pub fn held_by(&self, owner: u64) -> u32 {
        self.nodes_of(owner).len() as u32
    }

    /// Whether `n` nodes could be allocated right now.
    pub fn can_allocate(&self, n: u32) -> bool {
        n <= self.free_count
    }

    /// Allocates `n` nodes to `owner` using lowest-id-first (linear)
    /// selection. An owner may hold several grants; they accumulate.
    pub fn allocate(&mut self, n: u32, owner: u64) -> Result<Vec<NodeId>, AllocError> {
        if n > self.free_count {
            return Err(AllocError::Insufficient {
                requested: n,
                free: self.free_count,
            });
        }
        let granted = if self.scan_selection {
            // Reference path: the pre-index linear scan over every node.
            let mut granted = Vec::with_capacity(n as usize);
            for (i, (state, own)) in self.states.iter().zip(self.owner.iter()).enumerate() {
                if granted.len() == n as usize {
                    break;
                }
                if own.is_none() && state.accepts_new_work() {
                    granted.push(NodeId(i as u32));
                }
            }
            for &node in &granted {
                self.free.remove(node.0);
            }
            granted
        } else {
            // The run set holds exactly the placeable ids, ascending, so
            // taking the lowest n is the same linear selection.
            self.free.take_lowest(n)
        };
        debug_assert_eq!(granted.len(), n as usize);
        for &node in &granted {
            self.owner[node.index()] = Some(owner);
        }
        self.free_count -= n;
        let held = self.held.entry(owner).or_default();
        append_held(held, &granted);
        Ok(granted)
    }

    /// Allocates the exact node set `nodes` to `owner`. Used when the
    /// scheduler has computed a placement (e.g. reattaching resizer-job
    /// nodes to the original job).
    pub fn allocate_specific(&mut self, nodes: &[NodeId], owner: u64) -> Result<(), AllocError> {
        for &node in nodes {
            let st = self.states[node.index()];
            if self.owner[node.index()].is_some() || !st.accepts_new_work() {
                return Err(AllocError::NodeBusy(node));
            }
        }
        for &node in nodes {
            self.owner[node.index()] = Some(owner);
            self.free.remove(node.0);
        }
        self.free_count -= nodes.len() as u32;
        let held = self.held.entry(owner).or_default();
        append_held(held, nodes);
        Ok(())
    }

    /// Returns just-released nodes (sorted ascending — the order held
    /// lists are maintained in) to the free or unavailable pools. Nodes
    /// drained while allocated come back *unavailable*, not free — they
    /// must not be placeable until re-enabled via [`Cluster::set_state`].
    ///
    /// Placeable nodes are grouped into maximal consecutive-id runs and
    /// returned through [`FreeSet::insert_run`], so releasing a job's
    /// whole contiguous allocation costs O(log runs), not O(nodes) — the
    /// dominant cost of every completion at 65k-node scale before this
    /// batching.
    fn return_nodes(&mut self, nodes: &[NodeId]) {
        let mut i = 0;
        while i < nodes.len() {
            if !self.states[nodes[i].index()].accepts_new_work() {
                self.unavailable_count += 1;
                i += 1;
                continue;
            }
            let start = nodes[i].0;
            let mut end = start + 1;
            i += 1;
            while i < nodes.len()
                && nodes[i].0 == end
                && self.states[nodes[i].index()].accepts_new_work()
            {
                end += 1;
                i += 1;
            }
            self.free.insert_run(start, end);
            self.free_count += end - start;
        }
    }

    /// Releases every node held by `owner`, returning them.
    pub fn release_all(&mut self, owner: u64) -> Result<Vec<NodeId>, AllocError> {
        let nodes = self
            .held
            .remove(&owner)
            .ok_or(AllocError::UnknownOwner(owner))?;
        for &node in &nodes {
            self.owner[node.index()] = None;
        }
        self.return_nodes(&nodes);
        Ok(nodes)
    }

    /// Releases the `n` highest-numbered nodes held by `owner` (a shrink).
    /// Slurm releases from the tail of the job's node list; keeping the
    /// lowest nodes means rank 0's node survives every shrink.
    pub fn release_tail(&mut self, owner: u64, n: u32) -> Result<Vec<NodeId>, AllocError> {
        let held = self
            .held
            .get_mut(&owner)
            .ok_or(AllocError::UnknownOwner(owner))?;
        if (n as usize) > held.len() {
            return Err(AllocError::ShrinkTooLarge {
                held: held.len() as u32,
                release: n,
            });
        }
        let released: Vec<NodeId> = held.split_off(held.len() - n as usize);
        if held.is_empty() {
            self.held.remove(&owner);
        }
        for &node in &released {
            self.owner[node.index()] = None;
        }
        self.return_nodes(&released);
        Ok(released)
    }

    /// Transfers every node held by `from` to `to` (step 4 of the expansion
    /// protocol: the resizer job's nodes are reattached to the original
    /// job).
    pub fn transfer_all(&mut self, from: u64, to: u64) -> Result<Vec<NodeId>, AllocError> {
        let nodes = self
            .held
            .remove(&from)
            .ok_or(AllocError::UnknownOwner(from))?;
        for &node in &nodes {
            self.owner[node.index()] = Some(to);
        }
        let held = self.held.entry(to).or_default();
        append_held(held, &nodes);
        Ok(nodes)
    }

    /// Marks a node's administrative state. Allocated nodes may be drained;
    /// they are only excluded from *new* placements.
    pub fn set_state(&mut self, node: NodeId, state: NodeState) {
        let unowned = self.owner[node.index()].is_none();
        let was_placeable = self.states[node.index()].accepts_new_work() && unowned;
        let now_placeable = state.accepts_new_work() && unowned;
        self.states[node.index()] = state;
        match (was_placeable, now_placeable) {
            (true, false) => {
                self.free_count -= 1;
                self.free.remove(node.0);
                self.unavailable_count += 1;
            }
            (false, true) => {
                self.free_count += 1;
                self.free.insert(node.0);
                self.unavailable_count -= 1;
            }
            _ => {}
        }
    }

    /// Internal-consistency check used by tests and debug assertions.
    /// This is the one place the O(n) zip-scans survive: the maintained
    /// `free_count` / `unavailable_count` / run set are re-derived from
    /// first principles and compared.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut counted_free = 0;
        let mut counted_unavailable = 0;
        for (i, (state, own)) in self.states.iter().zip(self.owner.iter()).enumerate() {
            let placeable = own.is_none() && state.accepts_new_work();
            if placeable {
                counted_free += 1;
            }
            if own.is_none() && !state.accepts_new_work() {
                counted_unavailable += 1;
            }
            if placeable != self.free.contains(i as u32) {
                return Err(format!("free set disagrees on n{i}: placeable={placeable}"));
            }
            if let Some(o) = own {
                if !self.nodes_of(*o).contains(&NodeId(i as u32)) {
                    return Err(format!("node n{i} owner {o} not in held list"));
                }
            }
        }
        if counted_free != self.free_count {
            return Err(format!(
                "free_count {} != counted {}",
                self.free_count, counted_free
            ));
        }
        if self.free.len() != self.free_count {
            return Err(format!(
                "free set len {} != free_count {}",
                self.free.len(),
                self.free_count
            ));
        }
        if counted_unavailable != self.unavailable_count {
            return Err(format!(
                "unavailable_count {} != counted {}",
                self.unavailable_count, counted_unavailable
            ));
        }
        for (o, nodes) in &self.held {
            for n in nodes {
                if self.owner[n.index()] != Some(*o) {
                    return Err(format!("held list of {o} contains foreign node {n:?}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_allocation_takes_lowest_ids() {
        let mut c = Cluster::new(8, 16);
        let got = c.allocate(3, 1).unwrap();
        assert_eq!(got, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let got = c.allocate(2, 2).unwrap();
        assert_eq!(got, vec![NodeId(3), NodeId(4)]);
        assert_eq!(c.free_nodes(), 3);
        c.check_invariants().unwrap();
    }

    #[test]
    fn allocation_fails_when_insufficient() {
        let mut c = Cluster::new(4, 16);
        c.allocate(3, 1).unwrap();
        assert_eq!(
            c.allocate(2, 2),
            Err(AllocError::Insufficient {
                requested: 2,
                free: 1
            })
        );
        // Failed allocation must not disturb state.
        assert_eq!(c.free_nodes(), 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn release_all_returns_everything() {
        let mut c = Cluster::new(6, 16);
        c.allocate(4, 7).unwrap();
        let freed = c.release_all(7).unwrap();
        assert_eq!(freed.len(), 4);
        assert_eq!(c.free_nodes(), 6);
        assert_eq!(c.release_all(7), Err(AllocError::UnknownOwner(7)));
        c.check_invariants().unwrap();
    }

    #[test]
    fn release_tail_keeps_lowest_nodes() {
        let mut c = Cluster::new(8, 16);
        c.allocate(6, 3).unwrap();
        let released = c.release_tail(3, 4).unwrap();
        assert_eq!(released, vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5)]);
        assert_eq!(c.nodes_of(3), &[NodeId(0), NodeId(1)]);
        c.check_invariants().unwrap();
    }

    #[test]
    fn release_tail_rejects_overshrink() {
        let mut c = Cluster::new(4, 16);
        c.allocate(2, 1).unwrap();
        assert_eq!(
            c.release_tail(1, 3),
            Err(AllocError::ShrinkTooLarge {
                held: 2,
                release: 3
            })
        );
    }

    #[test]
    fn transfer_reattaches_resizer_nodes() {
        let mut c = Cluster::new(10, 16);
        c.allocate(4, 100).unwrap(); // original job
        c.allocate(2, 200).unwrap(); // resizer job
        let moved = c.transfer_all(200, 100).unwrap();
        assert_eq!(moved.len(), 2);
        assert_eq!(c.held_by(100), 6);
        assert_eq!(c.held_by(200), 0);
        assert_eq!(c.owner_of(NodeId(4)), Some(100));
        c.check_invariants().unwrap();
    }

    #[test]
    fn drained_nodes_not_placeable() {
        let mut c = Cluster::new(3, 16);
        c.set_state(NodeId(0), NodeState::Drained);
        assert_eq!(c.free_nodes(), 2);
        let got = c.allocate(2, 1).unwrap();
        assert_eq!(got, vec![NodeId(1), NodeId(2)]);
        c.set_state(NodeId(0), NodeState::Up);
        assert_eq!(c.free_nodes(), 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn allocate_specific_rejects_busy() {
        let mut c = Cluster::new(4, 16);
        c.allocate(1, 1).unwrap(); // takes n0
        assert_eq!(
            c.allocate_specific(&[NodeId(0), NodeId(1)], 2),
            Err(AllocError::NodeBusy(NodeId(0)))
        );
        // Nothing allocated on failure.
        assert_eq!(c.owner_of(NodeId(1)), None);
        c.allocate_specific(&[NodeId(2), NodeId(3)], 2).unwrap();
        assert_eq!(c.held_by(2), 2);
        c.check_invariants().unwrap();
    }

    #[test]
    fn drained_while_allocated_returns_unavailable_not_free() {
        let mut c = Cluster::new(4, 16);
        c.allocate(2, 1).unwrap();
        // Drain an allocated node: it keeps serving its job...
        c.set_state(NodeId(0), NodeState::Drained);
        assert_eq!(c.free_nodes(), 2);
        assert_eq!(c.allocated_nodes(), 2);
        // ...but on release it must not become placeable.
        c.release_all(1).unwrap();
        assert_eq!(c.free_nodes(), 3);
        assert_eq!(c.allocated_nodes(), 0);
        let got = c.allocate(3, 2).unwrap();
        assert_eq!(got, vec![NodeId(1), NodeId(2), NodeId(3)]);
        c.check_invariants().unwrap();
        // Re-enabling the drained node makes it placeable again.
        c.set_state(NodeId(0), NodeState::Up);
        assert_eq!(c.free_nodes(), 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn scan_selection_grants_identical_nodes() {
        // Drive the same fragmented allocation pattern through both
        // selection paths; every grant must be bit-identical.
        let run = |scan: bool| {
            let mut c = Cluster::new(32, 16);
            c.use_scan_selection(scan);
            let mut grants = Vec::new();
            for owner in 0..6u64 {
                grants.push(c.allocate(3 + (owner as u32 % 3), owner).unwrap());
            }
            c.release_all(1).unwrap();
            c.release_all(4).unwrap();
            c.set_state(NodeId(2), NodeState::Drained);
            grants.push(c.allocate(5, 10).unwrap());
            grants.push(c.allocate(4, 11).unwrap());
            c.release_tail(10, 2).unwrap();
            grants.push(c.allocate(3, 12).unwrap());
            c.check_invariants().unwrap();
            (grants, c.free_nodes(), c.allocated_nodes())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn allocated_nodes_is_counter_backed() {
        let mut c = Cluster::new(10, 16);
        c.set_state(NodeId(9), NodeState::Down);
        c.allocate(4, 1).unwrap();
        assert_eq!(c.allocated_nodes(), 4);
        assert_eq!(c.free_nodes(), 5);
        c.release_tail(1, 1).unwrap();
        assert_eq!(c.allocated_nodes(), 3);
        c.check_invariants().unwrap();
    }

    #[test]
    fn multiple_grants_accumulate() {
        let mut c = Cluster::new(8, 16);
        c.allocate(2, 9).unwrap();
        c.allocate(3, 9).unwrap();
        assert_eq!(c.held_by(9), 5);
        assert_eq!(c.nodes_of(9).len(), 5);
        c.check_invariants().unwrap();
    }
}
