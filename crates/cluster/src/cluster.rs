//! Node inventory and allocation bookkeeping.
//!
//! Allocation is by whole nodes, matching the paper (MPI ranks are placed one
//! per node; intra-node parallelism belongs to OpenMP/OmpSs and is invisible
//! to the resource manager). Owners are opaque `u64` tags chosen by the
//! caller — `dmr-slurm` uses job ids — so this crate stays free of scheduler
//! concepts.
//!
//! Nodes belong to [`crate::MachineClass`]es in dense contiguous id ranges
//! (see [`ClassTable`]), and the free pool is one [`FreeSet`] per class. Because
//! the ranges are contiguous and ascending, taking the lowest ids class by
//! class *is* the global lowest-id-first selection — the single-class layout
//! is bit-identical to the historical uniform cluster.

use std::collections::BTreeMap;

use crate::classes::{ClassConstraint, ClassId, ClassTable};
use crate::freeset::FreeSet;
use crate::node::{NodeId, NodeState};

/// Errors from allocation requests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// Fewer free nodes than requested (within the eligible classes).
    Insufficient { requested: u32, free: u32 },
    /// A specific node was requested but is busy or not up.
    NodeBusy(NodeId),
    /// The owner tag is unknown (release/shrink of a non-allocated owner).
    UnknownOwner(u64),
    /// Shrink would release more nodes than the owner holds.
    ShrinkTooLarge { held: u32, release: u32 },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Insufficient { requested, free } => {
                write!(f, "requested {requested} nodes but only {free} free")
            }
            AllocError::NodeBusy(n) => write!(f, "{n} is busy or unavailable"),
            AllocError::UnknownOwner(o) => write!(f, "owner {o} holds no allocation"),
            AllocError::ShrinkTooLarge { held, release } => {
                write!(f, "cannot release {release} of {held} held nodes")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// What [`Cluster::fail_node`] found at the failing node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailOutcome {
    /// The node was free; it moved to the unavailable pool.
    Idle,
    /// The node was serving this owner's allocation. It stays owned (the
    /// scheduler decides the job's fate) and will return *unavailable*,
    /// not free, when released — the PR 5 drained-while-allocated path.
    Busy(u64),
    /// The node was not `Up` (already down, drained, or powered off);
    /// nothing changed.
    Skipped,
}

/// The cluster: a set of nodes, each either free or owned by exactly one
/// owner tag.
///
/// Node selection is *linear*: the lowest-numbered free nodes are taken
/// first, mirroring Slurm's `select/linear` plug-in configured in the paper.
/// This also keeps simulations deterministic.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// The machine's class layout (one entry for uniform clusters).
    table: ClassTable,
    states: Vec<NodeState>,
    owner: Vec<Option<u64>>,
    /// Owner -> sorted list of held nodes. BTreeMap keeps iteration (and
    /// therefore any derived event order) deterministic.
    held: BTreeMap<u64, Vec<NodeId>>,
    /// The placeable (unowned, accepting-work) ids, one sorted run set per
    /// class; allocation takes the lowest run of each eligible class.
    free: Vec<FreeSet>,
    free_count: u32,
    /// Unowned nodes not accepting work (drained / down / off), maintained
    /// so [`Cluster::allocated_nodes`] is O(1) instead of a zip-scan.
    unavailable_count: u32,
    /// Per-class recounts of the two pools above plus the allocated pool,
    /// maintained at every transition for O(classes) power sampling.
    unavailable_by_class: Vec<u32>,
    busy_by_class: Vec<u32>,
    /// Nodes powered down to S5 by an energy policy, per class. Off nodes
    /// also count into `unavailable_count` (they accept no work).
    off_sets: Vec<FreeSet>,
    off_by_class: Vec<u32>,
    cores_per_node: u32,
    /// Equivalence-oracle knob: select granted nodes with the pre-index
    /// full scan instead of the run set (results are identical; only the
    /// cost differs). See [`Cluster::use_scan_selection`].
    scan_selection: bool,
}

/// Appends `granted` to the sorted `held` list, skipping the re-sort in
/// the common case where the appended run is itself ascending and starts
/// above the current tail (lowest-id-first selection grants ascending
/// runs, and a job's later grants usually sit above its first ones). The
/// check is O(grant) against the O(held log held) sort it avoids.
fn append_held(held: &mut Vec<NodeId>, granted: &[NodeId]) {
    let in_order = granted.windows(2).all(|w| w[0] <= w[1])
        && match (held.last(), granted.first()) {
            (Some(&last), Some(&first)) => last < first,
            _ => true,
        };
    held.extend_from_slice(granted);
    if !in_order {
        held.sort_unstable();
    }
}

impl Cluster {
    /// A cluster of `nodes` identical nodes, all up and free.
    pub fn new(nodes: u32, cores_per_node: u32) -> Self {
        Cluster::with_classes(ClassTable::uniform(nodes, cores_per_node))
    }

    /// A cluster laid out by `table`: every class's nodes up and free.
    pub fn with_classes(table: ClassTable) -> Self {
        let nodes = table.total_nodes();
        let k = table.num_classes();
        let free = (0..k)
            .map(|c| {
                let (start, end) = table.range(c);
                let mut s = FreeSet::new();
                s.insert_run(start, end);
                s
            })
            .collect();
        let cores_per_node = table.class(0).cores;
        Cluster {
            table,
            states: vec![NodeState::Up; nodes as usize],
            owner: vec![None; nodes as usize],
            held: BTreeMap::new(),
            free,
            free_count: nodes,
            unavailable_count: 0,
            unavailable_by_class: vec![0; k],
            busy_by_class: vec![0; k],
            off_sets: vec![FreeSet::new(); k],
            off_by_class: vec![0; k],
            cores_per_node,
            scan_selection: false,
        }
    }

    /// Switches node selection in [`Cluster::allocate`] to the pre-index
    /// O(total nodes) scan. The scan is the *reference implementation*:
    /// it grants exactly the same nodes as the run-set path (pinned by
    /// tests), and exists so benchmarks can measure the index win and
    /// equivalence tests can hold the old behaviour up as an oracle.
    pub fn use_scan_selection(&mut self, scan: bool) {
        self.scan_selection = scan;
    }

    /// The paper's testbed: 65 nodes × 16 cores.
    pub fn marenostrum() -> Self {
        Cluster::new(crate::MARENOSTRUM_NODES, crate::MARENOSTRUM_CORES_PER_NODE)
    }

    /// The machine's class layout.
    pub fn table(&self) -> &ClassTable {
        &self.table
    }

    /// The class a node belongs to.
    pub fn class_of(&self, node: NodeId) -> ClassId {
        self.table.class_of(node.0)
    }

    pub fn total_nodes(&self) -> u32 {
        self.states.len() as u32
    }

    /// Cores per node of the *first* class (uniform clusters have only
    /// one; heterogeneous callers should consult [`Cluster::table`]).
    pub fn cores_per_node(&self) -> u32 {
        self.cores_per_node
    }

    /// Nodes currently free *and* accepting work, across all classes.
    pub fn free_nodes(&self) -> u32 {
        self.free_count
    }

    /// Nodes currently free and accepting work within the classes
    /// eligible under `constraint`.
    pub fn free_nodes_in(&self, constraint: ClassConstraint) -> u32 {
        match constraint {
            ClassConstraint::Any => self.free_count,
            _ => self
                .eligible_classes(constraint)
                .map(|c| self.free[c].len())
                .sum(),
        }
    }

    /// Nodes currently owned by some allocation. O(1): free and
    /// unavailable counts are maintained at every transition instead of
    /// being recounted by a scan (this is sampled per metrics event).
    pub fn allocated_nodes(&self) -> u32 {
        self.total_nodes() - self.free_count - self.unavailable_count
    }

    /// Per-class allocated-node counts (power sampling; O(1) access).
    pub fn busy_by_class(&self) -> &[u32] {
        &self.busy_by_class
    }

    /// Per-class powered-down node counts (power sampling; O(1) access).
    pub fn off_by_class(&self) -> &[u32] {
        &self.off_by_class
    }

    /// Total powered-down nodes.
    pub fn off_nodes(&self) -> u32 {
        self.off_by_class.iter().sum()
    }

    /// Owner of a node, if allocated.
    pub fn owner_of(&self, node: NodeId) -> Option<u64> {
        self.owner.get(node.index()).copied().flatten()
    }

    /// Administrative/power state of a node.
    pub fn node_state(&self, node: NodeId) -> NodeState {
        self.states[node.index()]
    }

    /// Nodes held by `owner` (sorted ascending), empty if none.
    pub fn nodes_of(&self, owner: u64) -> &[NodeId] {
        self.held.get(&owner).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of nodes held by `owner`.
    pub fn held_by(&self, owner: u64) -> u32 {
        self.nodes_of(owner).len() as u32
    }

    /// Per-class counts of the nodes held by `owner` (all zeros when the
    /// owner holds nothing). O(classes × log held): class ranges are
    /// contiguous and held lists sorted ascending, so each class's share
    /// is a partition-point probe, not a per-node walk — this runs on
    /// every start and resize of every job on a heterogeneous cluster.
    pub fn held_class_counts(&self, owner: u64) -> Vec<u32> {
        let mut counts = vec![0u32; self.table.num_classes()];
        if let Some(held) = self.held.get(&owner) {
            let mut lo = 0;
            for (c, count) in counts.iter_mut().enumerate() {
                let (_, end) = self.table.range(c);
                let hi = lo + held[lo..].partition_point(|n| n.0 < end);
                *count = (hi - lo) as u32;
                lo = hi;
            }
        }
        counts
    }

    /// Whether `n` nodes could be allocated right now (any class).
    pub fn can_allocate(&self, n: u32) -> bool {
        n <= self.free_count
    }

    /// Whether `n` nodes could be allocated right now from the classes
    /// eligible under `constraint`.
    pub fn can_allocate_in(&self, n: u32, constraint: ClassConstraint) -> bool {
        n <= self.free_nodes_in(constraint)
    }

    /// Class indices eligible under `constraint`, ascending.
    fn eligible_classes(&self, constraint: ClassConstraint) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.table.num_classes()).filter(move |&c| constraint.allows(c, self.table.class(c)))
    }

    /// Allocates `n` nodes to `owner` using lowest-id-first (linear)
    /// selection. An owner may hold several grants; they accumulate.
    pub fn allocate(&mut self, n: u32, owner: u64) -> Result<Vec<NodeId>, AllocError> {
        self.allocate_in(n, owner, ClassConstraint::Any)
    }

    /// Allocates `n` nodes to `owner` from the classes eligible under
    /// `constraint`, lowest-id-first within the eligible ranges. With
    /// [`ClassConstraint::Any`] on a single-class table this is exactly
    /// the historical uniform allocation.
    pub fn allocate_in(
        &mut self,
        n: u32,
        owner: u64,
        constraint: ClassConstraint,
    ) -> Result<Vec<NodeId>, AllocError> {
        let eligible_free = self.free_nodes_in(constraint);
        if n > eligible_free {
            return Err(AllocError::Insufficient {
                requested: n,
                free: eligible_free,
            });
        }
        let granted = if self.scan_selection {
            // Reference path: the pre-index linear scan, restricted to
            // the eligible class ranges (which are ascending, so under
            // `Any` this is the historical whole-inventory scan).
            let mut granted = Vec::with_capacity(n as usize);
            let ranges: Vec<(u32, u32)> = self
                .eligible_classes(constraint)
                .map(|c| self.table.range(c))
                .collect();
            'scan: for (start, end) in ranges {
                for i in start..end {
                    if granted.len() == n as usize {
                        break 'scan;
                    }
                    if self.owner[i as usize].is_none()
                        && self.states[i as usize].accepts_new_work()
                    {
                        granted.push(NodeId(i));
                    }
                }
            }
            for &node in &granted {
                self.free[self.table.class_of(node.0)].remove(node.0);
            }
            granted
        } else {
            // Each class's run set holds exactly its placeable ids,
            // ascending; draining eligible classes in range order is the
            // same linear selection.
            let mut granted = Vec::with_capacity(n as usize);
            let classes: Vec<ClassId> = self.eligible_classes(constraint).collect();
            for c in classes {
                let want = n - granted.len() as u32;
                if want == 0 {
                    break;
                }
                granted.extend(self.free[c].take_lowest(want));
            }
            granted
        };
        debug_assert_eq!(granted.len(), n as usize);
        for &node in &granted {
            self.owner[node.index()] = Some(owner);
            self.busy_by_class[self.table.class_of(node.0)] += 1;
        }
        self.free_count -= n;
        let held = self.held.entry(owner).or_default();
        append_held(held, &granted);
        Ok(granted)
    }

    /// Allocates the exact node set `nodes` to `owner`. Used when the
    /// scheduler has computed a placement (e.g. reattaching resizer-job
    /// nodes to the original job).
    pub fn allocate_specific(&mut self, nodes: &[NodeId], owner: u64) -> Result<(), AllocError> {
        for &node in nodes {
            let st = self.states[node.index()];
            if self.owner[node.index()].is_some() || !st.accepts_new_work() {
                return Err(AllocError::NodeBusy(node));
            }
        }
        for &node in nodes {
            self.owner[node.index()] = Some(owner);
            let c = self.table.class_of(node.0);
            self.free[c].remove(node.0);
            self.busy_by_class[c] += 1;
        }
        self.free_count -= nodes.len() as u32;
        let held = self.held.entry(owner).or_default();
        append_held(held, nodes);
        Ok(())
    }

    /// Returns just-released nodes (sorted ascending — the order held
    /// lists are maintained in) to the free or unavailable pools. Nodes
    /// drained while allocated come back *unavailable*, not free — they
    /// must not be placeable until re-enabled via [`Cluster::set_state`].
    ///
    /// Placeable nodes are grouped into maximal consecutive-id runs,
    /// split at class boundaries, and returned through
    /// [`FreeSet::insert_run`], so releasing a job's whole contiguous
    /// allocation costs O(log runs), not O(nodes) — the dominant cost of
    /// every completion at 65k-node scale before this batching.
    fn return_nodes(&mut self, nodes: &[NodeId]) {
        let mut i = 0;
        while i < nodes.len() {
            let c = self.table.class_of(nodes[i].0);
            self.busy_by_class[c] -= 1;
            if !self.states[nodes[i].index()].accepts_new_work() {
                self.unavailable_count += 1;
                self.unavailable_by_class[c] += 1;
                i += 1;
                continue;
            }
            let start = nodes[i].0;
            let class_end = self.table.range(c).1;
            let mut end = start + 1;
            i += 1;
            while i < nodes.len()
                && nodes[i].0 == end
                && end < class_end
                && self.states[nodes[i].index()].accepts_new_work()
            {
                self.busy_by_class[c] -= 1;
                end += 1;
                i += 1;
            }
            self.free[c].insert_run(start, end);
            self.free_count += end - start;
        }
    }

    /// Releases every node held by `owner`, returning them.
    pub fn release_all(&mut self, owner: u64) -> Result<Vec<NodeId>, AllocError> {
        let nodes = self
            .held
            .remove(&owner)
            .ok_or(AllocError::UnknownOwner(owner))?;
        for &node in &nodes {
            self.owner[node.index()] = None;
        }
        self.return_nodes(&nodes);
        Ok(nodes)
    }

    /// Releases the `n` highest-numbered nodes held by `owner` (a shrink).
    /// Slurm releases from the tail of the job's node list; keeping the
    /// lowest nodes means rank 0's node survives every shrink — and with
    /// classes ordered efficient-first, shrinks shed the least-efficient
    /// classes first.
    pub fn release_tail(&mut self, owner: u64, n: u32) -> Result<Vec<NodeId>, AllocError> {
        let held = self
            .held
            .get_mut(&owner)
            .ok_or(AllocError::UnknownOwner(owner))?;
        if (n as usize) > held.len() {
            return Err(AllocError::ShrinkTooLarge {
                held: held.len() as u32,
                release: n,
            });
        }
        let released: Vec<NodeId> = held.split_off(held.len() - n as usize);
        if held.is_empty() {
            self.held.remove(&owner);
        }
        for &node in &released {
            self.owner[node.index()] = None;
        }
        self.return_nodes(&released);
        Ok(released)
    }

    /// Transfers every node held by `from` to `to` (step 4 of the expansion
    /// protocol: the resizer job's nodes are reattached to the original
    /// job).
    pub fn transfer_all(&mut self, from: u64, to: u64) -> Result<Vec<NodeId>, AllocError> {
        let nodes = self
            .held
            .remove(&from)
            .ok_or(AllocError::UnknownOwner(from))?;
        for &node in &nodes {
            self.owner[node.index()] = Some(to);
        }
        let held = self.held.entry(to).or_default();
        append_held(held, &nodes);
        Ok(nodes)
    }

    /// The worst (largest) execution-time multiplier among the classes
    /// `owner` holds nodes on, as a `(num, den)` fraction — jobs run at
    /// the speed of their slowest node. Neutral `(1, 1)` when the owner
    /// holds nothing. O(classes × log held): the sorted held list is
    /// probed once per class range.
    pub fn worst_slowdown(&self, owner: u64) -> (u32, u32) {
        let held = self.nodes_of(owner);
        let mut worst: Option<(u32, u32)> = None;
        for c in 0..self.table.num_classes() {
            let (start, end) = self.table.range(c);
            let idx = held.partition_point(|n| n.0 < start);
            if idx < held.len() && held[idx].0 < end {
                let cls = self.table.class(c);
                // a/b > w.0/w.1  ⇔  a·w.1 > w.0·b (all positive).
                let slower = worst.is_none_or(|(wn, wd)| {
                    (cls.slow_num as u64) * (wd as u64) > (wn as u64) * (cls.slow_den as u64)
                });
                if slower {
                    worst = Some((cls.slow_num, cls.slow_den));
                }
            }
        }
        worst.unwrap_or((1, 1))
    }

    /// Powers down up to `n` free nodes (S5 suspend), preferring the
    /// *highest* free ids — with classes laid out efficient-first, those
    /// are the least useful nodes to keep warm. Returns the nodes
    /// actually powered down (ascending). They stop being placeable until
    /// [`Cluster::wake_all`].
    pub fn power_down(&mut self, n: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut want = n;
        for c in (0..self.table.num_classes()).rev() {
            if want == 0 {
                break;
            }
            let taken = self.free[c].take_highest(want);
            want -= taken.len() as u32;
            for &node in &taken {
                self.states[node.index()] = NodeState::Off;
                self.off_sets[c].insert(node.0);
            }
            let k = taken.len() as u32;
            self.free_count -= k;
            self.unavailable_count += k;
            self.unavailable_by_class[c] += k;
            self.off_by_class[c] += k;
            out.extend(taken);
        }
        out.sort_unstable();
        out
    }

    /// Wakes every powered-down node back to `Up` and placeable,
    /// returning how many woke. The caller models the wake-up latency by
    /// delaying this call.
    pub fn wake_all(&mut self) -> u32 {
        let mut woke = 0;
        for c in 0..self.table.num_classes() {
            let k = self.off_sets[c].len();
            if k == 0 {
                continue;
            }
            let nodes = self.off_sets[c].take_lowest(k);
            for &node in &nodes {
                self.states[node.index()] = NodeState::Up;
                self.free[c].insert(node.0);
            }
            self.free_count += k;
            self.unavailable_count -= k;
            self.unavailable_by_class[c] -= k;
            self.off_by_class[c] -= k;
            woke += k;
        }
        woke
    }

    /// Marks a node's administrative state. Allocated nodes may be drained;
    /// they are only excluded from *new* placements. `Off` is not an
    /// administrative state — it is entered through
    /// [`Cluster::power_down`] only.
    pub fn set_state(&mut self, node: NodeId, state: NodeState) {
        assert!(
            state != NodeState::Off,
            "power management goes through power_down/wake_all"
        );
        let c = self.table.class_of(node.0);
        if self.states[node.index()] == NodeState::Off {
            // Administrative override of a powered-down node: it leaves
            // the off pool for whatever state was requested.
            self.off_sets[c].remove(node.0);
            self.off_by_class[c] -= 1;
            if state.accepts_new_work() {
                self.free[c].insert(node.0);
                self.free_count += 1;
                self.unavailable_count -= 1;
                self.unavailable_by_class[c] -= 1;
            }
            self.states[node.index()] = state;
            return;
        }
        let unowned = self.owner[node.index()].is_none();
        let was_placeable = self.states[node.index()].accepts_new_work() && unowned;
        let now_placeable = state.accepts_new_work() && unowned;
        self.states[node.index()] = state;
        match (was_placeable, now_placeable) {
            (true, false) => {
                self.free_count -= 1;
                self.free[c].remove(node.0);
                self.unavailable_count += 1;
                self.unavailable_by_class[c] += 1;
            }
            (false, true) => {
                self.free_count += 1;
                self.free[c].insert(node.0);
                self.unavailable_count -= 1;
                self.unavailable_by_class[c] -= 1;
            }
            _ => {}
        }
    }

    /// An injected failure takes `node` down. Free nodes move to the
    /// unavailable pool immediately; allocated nodes keep their owner
    /// (the returned [`FailOutcome::Busy`] tag tells the scheduler whose
    /// job lost hardware) and rejoin the unavailable pool only when
    /// released, via the same drained-while-allocated path as
    /// administrative drains. Nodes that are not `Up` are skipped — the
    /// fault process draws victims over the whole id range, so a failure
    /// landing on an already-down or powered-off node is a no-op.
    ///
    /// Either way a down node draws *idle* watts in the
    /// [`crate::PowerMeter`] (it is neither busy nor off) until repaired.
    pub fn fail_node(&mut self, node: NodeId) -> FailOutcome {
        if self.states[node.index()] != NodeState::Up {
            return FailOutcome::Skipped;
        }
        let owner = self.owner[node.index()];
        self.set_state(node, NodeState::Down);
        match owner {
            Some(o) => FailOutcome::Busy(o),
            None => FailOutcome::Idle,
        }
    }

    /// Repairs a previously failed (`Down`) node back to `Up`, returning
    /// whether it became placeable. Repairs targeting nodes that are not
    /// `Down` (never failed, re-failed events, administratively retired)
    /// are no-ops that return `false`; an owned `Down` node (possible
    /// only in the window before the scheduler reacts to the failure)
    /// comes back `Up` but not placeable.
    pub fn repair_node(&mut self, node: NodeId) -> bool {
        if self.states[node.index()] != NodeState::Down {
            return false;
        }
        let unowned = self.owner[node.index()].is_none();
        self.set_state(node, NodeState::Up);
        unowned
    }

    /// Internal-consistency check used by tests and debug assertions.
    /// This is the one place the O(n) zip-scans survive: the maintained
    /// counters and run sets — global and per-class — are re-derived from
    /// first principles and compared, and every node's class assignment
    /// is checked against the class table's ranges.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.table.check()?;
        if self.table.total_nodes() != self.total_nodes() {
            return Err(format!(
                "class table covers {} nodes, inventory has {}",
                self.table.total_nodes(),
                self.total_nodes()
            ));
        }
        let k = self.table.num_classes();
        let mut counted_free = 0;
        let mut counted_unavailable = 0;
        let mut free_c = vec![0u32; k];
        let mut unavail_c = vec![0u32; k];
        let mut busy_c = vec![0u32; k];
        let mut off_c = vec![0u32; k];
        for (i, (state, own)) in self.states.iter().zip(self.owner.iter()).enumerate() {
            let c = self.table.class_of(i as u32);
            let (start, end) = self.table.range(c);
            if !(start..end).contains(&(i as u32)) {
                return Err(format!(
                    "node n{i} assigned class {c} whose range [{start}, {end}) disagrees"
                ));
            }
            let placeable = own.is_none() && state.accepts_new_work();
            if placeable {
                counted_free += 1;
                free_c[c] += 1;
            }
            if own.is_none() && !state.accepts_new_work() {
                counted_unavailable += 1;
                unavail_c[c] += 1;
            }
            if own.is_some() {
                busy_c[c] += 1;
            }
            if *state == NodeState::Off {
                if own.is_some() {
                    return Err(format!("powered-down node n{i} is owned"));
                }
                off_c[c] += 1;
                if !self.off_sets[c].contains(i as u32) {
                    return Err(format!("off set of class {c} missing powered-down n{i}"));
                }
            } else if self.off_sets[c].contains(i as u32) {
                return Err(format!("off set of class {c} contains running n{i}"));
            }
            if placeable != self.free[c].contains(i as u32) {
                return Err(format!(
                    "class {c} free set disagrees on n{i}: placeable={placeable}"
                ));
            }
            if let Some(o) = own {
                if !self.nodes_of(*o).contains(&NodeId(i as u32)) {
                    return Err(format!("node n{i} owner {o} not in held list"));
                }
            }
        }
        if counted_free != self.free_count {
            return Err(format!(
                "free_count {} != counted {}",
                self.free_count, counted_free
            ));
        }
        if counted_unavailable != self.unavailable_count {
            return Err(format!(
                "unavailable_count {} != counted {}",
                self.unavailable_count, counted_unavailable
            ));
        }
        for c in 0..k {
            let (start, end) = self.table.range(c);
            for set in [&self.free[c], &self.off_sets[c]] {
                if let Some(bad) = set.iter().find(|n| !(start..end).contains(&n.0)) {
                    return Err(format!(
                        "class {c} set holds {bad:?} outside its range [{start}, {end})"
                    ));
                }
            }
            if self.free[c].len() != free_c[c] {
                return Err(format!(
                    "class {c} free set len {} != counted {}",
                    self.free[c].len(),
                    free_c[c]
                ));
            }
            if self.unavailable_by_class[c] != unavail_c[c] {
                return Err(format!(
                    "class {c} unavailable counter {} != counted {}",
                    self.unavailable_by_class[c], unavail_c[c]
                ));
            }
            if self.busy_by_class[c] != busy_c[c] {
                return Err(format!(
                    "class {c} busy counter {} != counted {}",
                    self.busy_by_class[c], busy_c[c]
                ));
            }
            if self.off_by_class[c] != off_c[c] {
                return Err(format!(
                    "class {c} off counter {} != counted {} (off set len {})",
                    self.off_by_class[c],
                    off_c[c],
                    self.off_sets[c].len()
                ));
            }
        }
        if self.free.iter().map(|s| s.len()).sum::<u32>() != self.free_count {
            return Err("per-class free sets do not sum to free_count".into());
        }
        for (o, nodes) in &self.held {
            for n in nodes {
                if self.owner[n.index()] != Some(*o) {
                    return Err(format!("held list of {o} contains foreign node {n:?}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::MachineClass;

    #[test]
    fn linear_allocation_takes_lowest_ids() {
        let mut c = Cluster::new(8, 16);
        let got = c.allocate(3, 1).unwrap();
        assert_eq!(got, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let got = c.allocate(2, 2).unwrap();
        assert_eq!(got, vec![NodeId(3), NodeId(4)]);
        assert_eq!(c.free_nodes(), 3);
        c.check_invariants().unwrap();
    }

    #[test]
    fn allocation_fails_when_insufficient() {
        let mut c = Cluster::new(4, 16);
        c.allocate(3, 1).unwrap();
        assert_eq!(
            c.allocate(2, 2),
            Err(AllocError::Insufficient {
                requested: 2,
                free: 1
            })
        );
        // Failed allocation must not disturb state.
        assert_eq!(c.free_nodes(), 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn release_all_returns_everything() {
        let mut c = Cluster::new(6, 16);
        c.allocate(4, 7).unwrap();
        let freed = c.release_all(7).unwrap();
        assert_eq!(freed.len(), 4);
        assert_eq!(c.free_nodes(), 6);
        assert_eq!(c.release_all(7), Err(AllocError::UnknownOwner(7)));
        c.check_invariants().unwrap();
    }

    #[test]
    fn release_tail_keeps_lowest_nodes() {
        let mut c = Cluster::new(8, 16);
        c.allocate(6, 3).unwrap();
        let released = c.release_tail(3, 4).unwrap();
        assert_eq!(released, vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5)]);
        assert_eq!(c.nodes_of(3), &[NodeId(0), NodeId(1)]);
        c.check_invariants().unwrap();
    }

    #[test]
    fn release_tail_rejects_overshrink() {
        let mut c = Cluster::new(4, 16);
        c.allocate(2, 1).unwrap();
        assert_eq!(
            c.release_tail(1, 3),
            Err(AllocError::ShrinkTooLarge {
                held: 2,
                release: 3
            })
        );
    }

    #[test]
    fn transfer_reattaches_resizer_nodes() {
        let mut c = Cluster::new(10, 16);
        c.allocate(4, 100).unwrap(); // original job
        c.allocate(2, 200).unwrap(); // resizer job
        let moved = c.transfer_all(200, 100).unwrap();
        assert_eq!(moved.len(), 2);
        assert_eq!(c.held_by(100), 6);
        assert_eq!(c.held_by(200), 0);
        assert_eq!(c.owner_of(NodeId(4)), Some(100));
        c.check_invariants().unwrap();
    }

    #[test]
    fn drained_nodes_not_placeable() {
        let mut c = Cluster::new(3, 16);
        c.set_state(NodeId(0), NodeState::Drained);
        assert_eq!(c.free_nodes(), 2);
        let got = c.allocate(2, 1).unwrap();
        assert_eq!(got, vec![NodeId(1), NodeId(2)]);
        c.set_state(NodeId(0), NodeState::Up);
        assert_eq!(c.free_nodes(), 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn allocate_specific_rejects_busy() {
        let mut c = Cluster::new(4, 16);
        c.allocate(1, 1).unwrap(); // takes n0
        assert_eq!(
            c.allocate_specific(&[NodeId(0), NodeId(1)], 2),
            Err(AllocError::NodeBusy(NodeId(0)))
        );
        // Nothing allocated on failure.
        assert_eq!(c.owner_of(NodeId(1)), None);
        c.allocate_specific(&[NodeId(2), NodeId(3)], 2).unwrap();
        assert_eq!(c.held_by(2), 2);
        c.check_invariants().unwrap();
    }

    #[test]
    fn drained_while_allocated_returns_unavailable_not_free() {
        let mut c = Cluster::new(4, 16);
        c.allocate(2, 1).unwrap();
        // Drain an allocated node: it keeps serving its job...
        c.set_state(NodeId(0), NodeState::Drained);
        assert_eq!(c.free_nodes(), 2);
        assert_eq!(c.allocated_nodes(), 2);
        // ...but on release it must not become placeable.
        c.release_all(1).unwrap();
        assert_eq!(c.free_nodes(), 3);
        assert_eq!(c.allocated_nodes(), 0);
        let got = c.allocate(3, 2).unwrap();
        assert_eq!(got, vec![NodeId(1), NodeId(2), NodeId(3)]);
        c.check_invariants().unwrap();
        // Re-enabling the drained node makes it placeable again.
        c.set_state(NodeId(0), NodeState::Up);
        assert_eq!(c.free_nodes(), 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn scan_selection_grants_identical_nodes() {
        // Drive the same fragmented allocation pattern through both
        // selection paths; every grant must be bit-identical.
        let run = |scan: bool| {
            let mut c = Cluster::new(32, 16);
            c.use_scan_selection(scan);
            let mut grants = Vec::new();
            for owner in 0..6u64 {
                grants.push(c.allocate(3 + (owner as u32 % 3), owner).unwrap());
            }
            c.release_all(1).unwrap();
            c.release_all(4).unwrap();
            c.set_state(NodeId(2), NodeState::Drained);
            grants.push(c.allocate(5, 10).unwrap());
            grants.push(c.allocate(4, 11).unwrap());
            c.release_tail(10, 2).unwrap();
            grants.push(c.allocate(3, 12).unwrap());
            c.check_invariants().unwrap();
            (grants, c.free_nodes(), c.allocated_nodes())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn allocated_nodes_is_counter_backed() {
        let mut c = Cluster::new(10, 16);
        c.set_state(NodeId(9), NodeState::Down);
        c.allocate(4, 1).unwrap();
        assert_eq!(c.allocated_nodes(), 4);
        assert_eq!(c.free_nodes(), 5);
        c.release_tail(1, 1).unwrap();
        assert_eq!(c.allocated_nodes(), 3);
        c.check_invariants().unwrap();
    }

    #[test]
    fn multiple_grants_accumulate() {
        let mut c = Cluster::new(8, 16);
        c.allocate(2, 9).unwrap();
        c.allocate(3, 9).unwrap();
        assert_eq!(c.held_by(9), 5);
        assert_eq!(c.nodes_of(9).len(), 5);
        c.check_invariants().unwrap();
    }

    /// A 3-class layout for the heterogeneous tests: 4 standard (n0–n3),
    /// 2 big-memory (n4–n5), 2 GPU (n6–n7).
    fn hetero() -> Cluster {
        let std16 = MachineClass::standard(16);
        let bigmem = MachineClass {
            name: "bigmem",
            memory_gb: 128,
            slow_num: 5,
            slow_den: 4,
            ..std16
        };
        let gpu = MachineClass {
            name: "gpu",
            gpu: true,
            slow_num: 3,
            slow_den: 4,
            ..std16
        };
        Cluster::with_classes(ClassTable::new(&[(std16, 4), (bigmem, 2), (gpu, 2)]))
    }

    #[test]
    fn constrained_allocation_respects_class_ranges() {
        let mut c = hetero();
        let got = c.allocate_in(1, 1, ClassConstraint::GpuRequired).unwrap();
        assert_eq!(got, vec![NodeId(6)]);
        let got = c.allocate_in(2, 2, ClassConstraint::Class(1)).unwrap();
        assert_eq!(got, vec![NodeId(4), NodeId(5)]);
        // Any still takes the globally lowest ids.
        let got = c.allocate_in(3, 3, ClassConstraint::Any).unwrap();
        assert_eq!(got, vec![NodeId(0), NodeId(1), NodeId(2)]);
        // Class 1 is exhausted.
        assert_eq!(
            c.allocate_in(1, 4, ClassConstraint::Class(1)),
            Err(AllocError::Insufficient {
                requested: 1,
                free: 0
            })
        );
        assert!(c.can_allocate_in(1, ClassConstraint::GpuRequired));
        assert!(!c.can_allocate_in(2, ClassConstraint::GpuRequired));
        c.check_invariants().unwrap();
    }

    #[test]
    fn constrained_scan_matches_run_set() {
        let drive = |scan: bool| {
            let mut c = hetero();
            c.use_scan_selection(scan);
            let mut grants = Vec::new();
            grants.push(c.allocate_in(1, 1, ClassConstraint::GpuRequired).unwrap());
            grants.push(c.allocate_in(3, 2, ClassConstraint::Any).unwrap());
            c.release_all(2).unwrap();
            grants.push(c.allocate_in(2, 3, ClassConstraint::Class(1)).unwrap());
            grants.push(c.allocate_in(4, 4, ClassConstraint::Any).unwrap());
            c.check_invariants().unwrap();
            (grants, c.free_nodes())
        };
        assert_eq!(drive(false), drive(true));
    }

    #[test]
    fn any_spans_class_boundaries_lowest_first() {
        let mut c = hetero();
        let got = c.allocate_in(6, 1, ClassConstraint::Any).unwrap();
        assert_eq!(
            got,
            (0..6).map(NodeId).collect::<Vec<_>>(),
            "Any selection crosses the class boundary in global id order"
        );
        c.check_invariants().unwrap();
    }

    #[test]
    fn worst_slowdown_is_slowest_held_class() {
        let mut c = hetero();
        assert_eq!(c.worst_slowdown(1), (1, 1), "no nodes held");
        c.allocate_in(2, 1, ClassConstraint::Any).unwrap();
        assert_eq!(c.worst_slowdown(1), (1, 1), "standard nodes only");
        c.allocate_in(1, 1, ClassConstraint::Class(1)).unwrap();
        assert_eq!(c.worst_slowdown(1), (5, 4), "bigmem is the slowest");
        c.allocate_in(1, 2, ClassConstraint::GpuRequired).unwrap();
        assert_eq!(c.worst_slowdown(2), (3, 4), "gpu-only job runs faster");
    }

    #[test]
    fn power_down_takes_highest_free_and_wake_restores() {
        let mut c = hetero();
        c.allocate_in(2, 1, ClassConstraint::Any).unwrap(); // n0 n1
        let off = c.power_down(3);
        assert_eq!(off, vec![NodeId(5), NodeId(6), NodeId(7)]);
        assert_eq!(c.free_nodes(), 3);
        assert_eq!(c.off_nodes(), 3);
        assert_eq!(c.off_by_class(), &[0, 1, 2]);
        assert_eq!(c.allocated_nodes(), 2);
        c.check_invariants().unwrap();
        // Off nodes are not placeable.
        assert!(!c.can_allocate_in(1, ClassConstraint::GpuRequired));
        assert_eq!(
            c.allocate_in(4, 2, ClassConstraint::Any),
            Err(AllocError::Insufficient {
                requested: 4,
                free: 3
            })
        );
        assert_eq!(c.wake_all(), 3);
        assert_eq!(c.free_nodes(), 6);
        assert_eq!(c.off_nodes(), 0);
        let got = c.allocate_in(1, 2, ClassConstraint::GpuRequired).unwrap();
        assert_eq!(got, vec![NodeId(6)]);
        c.check_invariants().unwrap();
    }

    #[test]
    fn power_down_caps_at_free_pool() {
        let mut c = Cluster::new(4, 16);
        c.allocate(3, 1).unwrap();
        let off = c.power_down(10);
        assert_eq!(off, vec![NodeId(3)]);
        assert_eq!(c.free_nodes(), 0);
        c.check_invariants().unwrap();
        assert_eq!(c.wake_all(), 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn set_state_overrides_powered_down_node() {
        let mut c = Cluster::new(4, 16);
        let off = c.power_down(2);
        assert_eq!(off, vec![NodeId(2), NodeId(3)]);
        // Administratively downing an off node removes it from the off
        // pool without making it placeable.
        c.set_state(NodeId(3), NodeState::Down);
        assert_eq!(c.off_nodes(), 1);
        assert_eq!(c.free_nodes(), 2);
        c.check_invariants().unwrap();
        // Upping the other off node returns it to the free pool.
        c.set_state(NodeId(2), NodeState::Up);
        assert_eq!(c.off_nodes(), 0);
        assert_eq!(c.free_nodes(), 3);
        c.check_invariants().unwrap();
        assert_eq!(c.wake_all(), 0);
    }

    #[test]
    fn fail_free_node_goes_unavailable_and_repair_restores() {
        let mut c = Cluster::new(4, 16);
        assert_eq!(c.fail_node(NodeId(2)), FailOutcome::Idle);
        assert_eq!(c.free_nodes(), 3);
        c.check_invariants().unwrap();
        // Failing a non-Up node is a no-op.
        assert_eq!(c.fail_node(NodeId(2)), FailOutcome::Skipped);
        // Repairing a node that never failed is a no-op.
        assert!(!c.repair_node(NodeId(0)));
        assert_eq!(c.free_nodes(), 3);
        assert!(c.repair_node(NodeId(2)));
        assert_eq!(c.free_nodes(), 4);
        c.check_invariants().unwrap();
    }

    #[test]
    fn fail_allocated_node_returns_unavailable_until_repaired() {
        let mut c = Cluster::new(4, 16);
        c.allocate(2, 9).unwrap();
        assert_eq!(c.fail_node(NodeId(1)), FailOutcome::Busy(9));
        // Still owned: the scheduler decides what happens to the job.
        assert_eq!(c.owner_of(NodeId(1)), Some(9));
        assert_eq!(c.allocated_nodes(), 2);
        c.check_invariants().unwrap();
        // Released nodes route Down ids to the unavailable pool.
        c.release_all(9).unwrap();
        assert_eq!(c.free_nodes(), 3);
        assert_eq!(c.allocated_nodes(), 0);
        let got = c.allocate(3, 10).unwrap();
        assert_eq!(got, vec![NodeId(0), NodeId(2), NodeId(3)]);
        c.check_invariants().unwrap();
        assert!(c.repair_node(NodeId(1)));
        assert_eq!(c.free_nodes(), 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn fail_skips_powered_off_nodes() {
        let mut c = Cluster::new(4, 16);
        c.power_down(1); // n3
        assert_eq!(c.fail_node(NodeId(3)), FailOutcome::Skipped);
        assert!(!c.repair_node(NodeId(3)));
        assert_eq!(c.off_nodes(), 1);
        c.check_invariants().unwrap();
        assert_eq!(c.wake_all(), 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn repair_of_still_owned_down_node_is_not_placeable() {
        let mut c = Cluster::new(3, 16);
        c.allocate(2, 5).unwrap();
        assert_eq!(c.fail_node(NodeId(0)), FailOutcome::Busy(5));
        // Repair lands before the scheduler killed the job: node is Up
        // again but still owned, so not placeable.
        assert!(!c.repair_node(NodeId(0)));
        assert_eq!(c.free_nodes(), 1);
        c.check_invariants().unwrap();
        c.release_all(5).unwrap();
        assert_eq!(c.free_nodes(), 3);
        c.check_invariants().unwrap();
    }

    #[test]
    fn busy_counters_track_ownership_per_class() {
        let mut c = hetero();
        c.allocate_in(5, 1, ClassConstraint::Any).unwrap(); // n0..n4
        assert_eq!(c.busy_by_class(), &[4, 1, 0]);
        c.release_tail(1, 2).unwrap(); // drops n3 n4
        assert_eq!(c.busy_by_class(), &[3, 0, 0]);
        c.allocate_in(1, 2, ClassConstraint::GpuRequired).unwrap();
        assert_eq!(c.busy_by_class(), &[3, 0, 1]);
        c.release_all(2).unwrap();
        c.release_all(1).unwrap();
        assert_eq!(c.busy_by_class(), &[0, 0, 0]);
        c.check_invariants().unwrap();
    }
}
