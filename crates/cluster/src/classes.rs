//! Machine classes: heterogeneous node descriptions and the class table.
//!
//! The paper's testbed is a uniform cluster, but the productivity
//! argument for malleability is strongest when nodes differ: shrinking a
//! flexible job onto efficient machines and powering idle ones down is
//! where malleability buys *energy*, not just makespan. This module
//! describes such a machine: a small set of [`MachineClass`]es (cores,
//! memory, GPU flag, speed factor, and a P/C/S-state power ladder in the
//! cloudsim style), with nodes assigned to classes in dense contiguous
//! [`crate::node::NodeId`] ranges. The contiguity is load-bearing: it
//! keeps one [`crate::freeset::FreeSet`] per class equivalent to the old
//! global set under lowest-id-first selection, which is what pins the
//! single-class configuration bit-for-bit to the uniform behaviour.

use crate::node::NodeId;

/// Maximum number of classes a [`ClassTable`] may hold. Power accounting
/// travels through fixed-size per-class arrays in `Copy` result structs,
/// so the bound is part of the public contract (shipped mixes use ≤ 3).
pub const MAX_CLASSES: usize = 8;

/// Index of a class inside its [`ClassTable`] (dense, 0-based).
pub type ClassId = usize;

/// Description of one machine class.
///
/// The power ladder follows the cloudsim_eec specification: `s_states_w`
/// are the machine-level sleep states S0–S6 (S0 = powered base while on,
/// S5 = suspend, S6 = mechanically off), `p_states_w` the per-core active
/// power at P0–P3, and `c_states_w` the per-core idle power at C0–C3.
/// The simulator charges three operating points derived from the ladder:
/// [`MachineClass::watts_busy`], [`MachineClass::watts_idle`] and
/// [`MachineClass::watts_off`].
///
/// `slow_num / slow_den` is the execution-time multiplier of the class
/// relative to the baseline node: `> 1` runs compute steps slower, `< 1`
/// faster. Jobs spanning several classes run at the *slowest* class they
/// landed on, scaled in exact integer microseconds so determinism holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MachineClass {
    /// Short stable name (CSV labels, invariant messages).
    pub name: &'static str,
    /// Cores per node of this class.
    pub cores: u32,
    /// Memory per node, GiB (class-demand routing; informational).
    pub memory_gb: u32,
    /// Whether nodes of this class carry a GPU
    /// ([`ClassConstraint::GpuRequired`] routes onto these).
    pub gpu: bool,
    /// Execution-time multiplier numerator (see type docs).
    pub slow_num: u32,
    /// Execution-time multiplier denominator.
    pub slow_den: u32,
    /// Per-core active power, watts, at P0–P3.
    pub p_states_w: [u32; 4],
    /// Per-core idle power, watts, at C0–C3.
    pub c_states_w: [u32; 4],
    /// Machine-level sleep-state power, watts, at S0–S6.
    pub s_states_w: [u32; 7],
}

impl MachineClass {
    /// The baseline class every uniform cluster is made of: `cores` cores,
    /// no GPU, neutral speed, cloudsim reference power ladder.
    pub fn standard(cores: u32) -> Self {
        MachineClass {
            name: "standard",
            cores,
            memory_gb: 16,
            gpu: false,
            slow_num: 1,
            slow_den: 1,
            p_states_w: [12, 8, 6, 4],
            c_states_w: [12, 3, 1, 0],
            s_states_w: [120, 100, 100, 80, 40, 10, 0],
        }
    }

    /// Watts drawn by one node of this class while running a job:
    /// S0 machine base plus every core at P0.
    pub fn watts_busy(&self) -> u64 {
        self.s_states_w[0] as u64 + self.p_states_w[0] as u64 * self.cores as u64
    }

    /// Watts drawn by one idle (on, unallocated) node: S0 machine base
    /// plus every core parked in C1.
    pub fn watts_idle(&self) -> u64 {
        self.s_states_w[0] as u64 + self.c_states_w[1] as u64 * self.cores as u64
    }

    /// Watts drawn by one powered-down node (S5 suspend — wakeable, which
    /// is why it is not the zero-draw S6).
    pub fn watts_off(&self) -> u64 {
        self.s_states_w[5] as u64
    }

    /// Whether this class's speed factor is the neutral `1/1`.
    pub fn is_neutral_speed(&self) -> bool {
        self.slow_num == self.slow_den
    }
}

/// Which classes an allocation may draw from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ClassConstraint {
    /// Any class (the uniform-cluster default).
    #[default]
    Any,
    /// Exactly the given class.
    Class(ClassId),
    /// Any class whose nodes carry a GPU.
    GpuRequired,
}

impl ClassConstraint {
    /// Whether class `idx` (described by `class`) satisfies this
    /// constraint.
    pub fn allows(self, idx: ClassId, class: &MachineClass) -> bool {
        match self {
            ClassConstraint::Any => true,
            ClassConstraint::Class(c) => c == idx,
            ClassConstraint::GpuRequired => class.gpu,
        }
    }
}

/// The machine's class layout: classes plus their dense contiguous node
/// ranges, covering `0..total_nodes` without gaps.
#[derive(Clone, Debug)]
pub struct ClassTable {
    classes: Vec<MachineClass>,
    /// `[start, end)` node-id range of each class; `ranges[i].0 ==
    /// ranges[i-1].1` and `ranges[0].0 == 0` (validated at construction).
    ranges: Vec<(u32, u32)>,
}

impl ClassTable {
    /// A single-class table: `nodes` baseline nodes of `cores` cores —
    /// the uniform cluster every pre-heterogeneity configuration ran on.
    pub fn uniform(nodes: u32, cores: u32) -> Self {
        ClassTable::new(&[(MachineClass::standard(cores), nodes)])
    }

    /// Builds a table from `(class, node count)` specs, assigning node-id
    /// ranges in spec order starting at 0.
    ///
    /// # Panics
    /// If `specs` is empty, longer than [`MAX_CLASSES`], or contains a
    /// zero-node class (empty ranges would break the dense covering).
    pub fn new(specs: &[(MachineClass, u32)]) -> Self {
        assert!(
            !specs.is_empty() && specs.len() <= MAX_CLASSES,
            "class table must hold 1..={MAX_CLASSES} classes"
        );
        let mut classes = Vec::with_capacity(specs.len());
        let mut ranges = Vec::with_capacity(specs.len());
        let mut next = 0u32;
        for &(class, count) in specs {
            assert!(count > 0, "class {} has no nodes", class.name);
            assert!(
                class.slow_num > 0 && class.slow_den > 0,
                "class {} has a degenerate speed factor",
                class.name
            );
            classes.push(class);
            ranges.push((next, next + count));
            next += count;
        }
        ClassTable { classes, ranges }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total nodes across every class.
    pub fn total_nodes(&self) -> u32 {
        self.ranges.last().map_or(0, |&(_, end)| end)
    }

    /// The class description at `idx`.
    pub fn class(&self, idx: ClassId) -> &MachineClass {
        &self.classes[idx]
    }

    /// All classes in range order.
    pub fn classes(&self) -> &[MachineClass] {
        &self.classes
    }

    /// The `[start, end)` node-id range of class `idx`.
    pub fn range(&self, idx: ClassId) -> (u32, u32) {
        self.ranges[idx]
    }

    /// The class a node id belongs to.
    ///
    /// # Panics
    /// If `id` is outside the table (no class owns it).
    pub fn class_of(&self, id: u32) -> ClassId {
        debug_assert!(id < self.total_nodes(), "node {id} outside the table");
        // Ranges are contiguous ascending: the class is the last range
        // starting at or below `id`.
        self.ranges.partition_point(|&(start, _)| start <= id) - 1
    }

    /// As [`ClassTable::class_of`] for a [`NodeId`].
    pub fn class_of_node(&self, node: NodeId) -> ClassId {
        self.class_of(node.0)
    }

    /// Whether any class satisfies [`ClassConstraint::GpuRequired`].
    pub fn has_gpu_class(&self) -> bool {
        self.classes.iter().any(|c| c.gpu)
    }

    /// Whether the table is the degenerate single-class (uniform) layout.
    pub fn is_uniform(&self) -> bool {
        self.classes.len() == 1
    }

    /// Node count of class `idx`.
    pub fn class_nodes(&self, idx: ClassId) -> u32 {
        let (start, end) = self.ranges[idx];
        end - start
    }

    /// Validates the dense-contiguous covering: ranges start at 0, are
    /// non-empty, adjacent, and every node id round-trips through
    /// [`ClassTable::class_of`] into the range that contains it. Returns
    /// a description of the first violation.
    pub fn check(&self) -> Result<(), String> {
        if self.classes.len() != self.ranges.len() {
            return Err("class/range length mismatch".into());
        }
        let mut expected = 0u32;
        for (idx, &(start, end)) in self.ranges.iter().enumerate() {
            if start != expected {
                return Err(format!(
                    "class {idx} range starts at {start}, expected {expected} (gap or overlap)"
                ));
            }
            if start >= end {
                return Err(format!("class {idx} range [{start}, {end}) is empty"));
            }
            expected = end;
        }
        for id in 0..self.total_nodes() {
            let c = self.class_of(id);
            let (start, end) = self.ranges[c];
            if !(start..end).contains(&id) {
                return Err(format!(
                    "node n{id} resolves to class {c} but its range [{start}, {end}) disagrees"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_table_is_one_standard_class() {
        let t = ClassTable::uniform(65, 16);
        assert_eq!(t.num_classes(), 1);
        assert_eq!(t.total_nodes(), 65);
        assert!(t.is_uniform());
        assert!(!t.has_gpu_class());
        assert_eq!(t.range(0), (0, 65));
        assert_eq!(t.class_of(0), 0);
        assert_eq!(t.class_of(64), 0);
        assert!(t.class(0).is_neutral_speed());
        t.check().unwrap();
    }

    #[test]
    fn ranges_are_dense_and_class_of_round_trips() {
        let gpu = MachineClass {
            name: "gpu",
            gpu: true,
            ..MachineClass::standard(32)
        };
        let t = ClassTable::new(&[
            (MachineClass::standard(16), 10),
            (MachineClass::standard(48), 4),
            (gpu, 2),
        ]);
        assert_eq!(t.total_nodes(), 16);
        assert_eq!(t.class_of(0), 0);
        assert_eq!(t.class_of(9), 0);
        assert_eq!(t.class_of(10), 1);
        assert_eq!(t.class_of(13), 1);
        assert_eq!(t.class_of(14), 2);
        assert_eq!(t.class_of(15), 2);
        assert!(t.has_gpu_class());
        assert_eq!(t.class_nodes(1), 4);
        t.check().unwrap();
    }

    #[test]
    fn constraint_allows_matches_semantics() {
        let std = MachineClass::standard(16);
        let gpu = MachineClass {
            name: "gpu",
            gpu: true,
            ..std
        };
        assert!(ClassConstraint::Any.allows(0, &std));
        assert!(ClassConstraint::Any.allows(1, &gpu));
        assert!(ClassConstraint::Class(1).allows(1, &std));
        assert!(!ClassConstraint::Class(1).allows(0, &std));
        assert!(ClassConstraint::GpuRequired.allows(1, &gpu));
        assert!(!ClassConstraint::GpuRequired.allows(0, &std));
    }

    #[test]
    fn power_ladder_operating_points_are_ordered() {
        let c = MachineClass::standard(16);
        // Busy > idle > off: the ordering EnergyAware's savings rest on.
        assert!(c.watts_busy() > c.watts_idle());
        assert!(c.watts_idle() > c.watts_off());
        assert_eq!(c.watts_busy(), 120 + 12 * 16);
        assert_eq!(c.watts_idle(), 120 + 3 * 16);
        assert_eq!(c.watts_off(), 10);
    }

    #[test]
    #[should_panic(expected = "no nodes")]
    fn empty_class_is_rejected() {
        ClassTable::new(&[(MachineClass::standard(16), 0)]);
    }
}
