//! Offline stand-in for the `rand` crate.
//!
//! Provides exactly the API surface this workspace uses: the [`Rng`]
//! source trait, the [`RngExt::random`] extension (the workspace's
//! `rand::RngExt`), [`SeedableRng::seed_from_u64`], and a deterministic
//! [`rngs::StdRng`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a small, fast,
//! well-studied generator. It is **not** cryptographically secure, which
//! is fine here: every consumer is a statistical workload model or a test
//! fixture, and determinism per seed is the property that matters (the
//! paper fixes its workload seeds, §IX-A).

/// A source of random `u64`s. Object-safe so samplers can take
/// `&mut R where R: Rng + ?Sized`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`].
pub trait Random: Sized {
    /// Draws one uniform value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for u16 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Random for u8 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for usize {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience extension over any [`Rng`].
pub trait RngExt: Rng {
    /// Draws one uniform value of type `T` (e.g. `rng.random::<f64>()`).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a uniform value in `[low, high)`; panics if the range is
    /// empty. Uses rejection-free multiply-shift (bias < 2^-64).
    fn random_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 10k uniforms should be near 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = sample(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn random_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
