//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` returns the guard directly, recovering the data if a previous
//! holder panicked (the std guard is still valid; poisoning is advisory).

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }
}
