//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of external dependencies are vendored as API-compatible shims
//! under `shims/`. This one covers the subset of `bytes` the workspace
//! uses: cheaply-cloneable immutable [`Bytes`] views (backed by an
//! `Arc<[u8]>`), a growable [`BytesMut`], and the little-endian cursor
//! methods of [`Buf`] / [`BufMut`].

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply-cloneable, immutable slice of bytes.
///
/// Clones share the same backing allocation; [`Bytes::slice`] returns a
/// zero-copy sub-view.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty byte string (no allocation).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static slice (copied once into the shared allocation).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-view; panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice range {range:?} out of bounds for Bytes of length {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer; [`BytesMut::freeze`] converts it into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Read cursor over a byte source; `get_*` methods consume from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Discards `cnt` bytes from the front.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor; `put_*` methods append little-endian encodings.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_fields() {
        let mut out = BytesMut::with_capacity(20);
        out.put_u32_le(7);
        out.put_u64_le(u64::MAX - 1);
        out.put_f64_le(-2.5);
        let mut b = out.freeze();
        assert_eq!(b.remaining(), 20);
        assert_eq!(b.get_u32_le(), 7);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_f64_le(), -2.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slices_share_storage_and_clip() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let ss = s.slice(1..2);
        assert_eq!(&ss[..], &[3]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..5);
    }

    #[test]
    fn equality_ignores_backing_offsets() {
        let a = Bytes::from(vec![9, 9, 1, 2]).slice(2..4);
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(a, b);
    }
}
