//! Offline stand-in for the `serde` crate.
//!
//! `Serialize` / `Deserialize` exist here only as marker traits (blanket
//! implemented, derives expand to nothing) so types can keep their
//! `#[derive(Serialize)]` annotations. Real data output in this workspace
//! is the hand-written CSV layer in `dmr-metrics`; if genuine serde
//! support ever becomes available, swapping this shim for the real crate
//! is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that would be serializable under real serde.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
