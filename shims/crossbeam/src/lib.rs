//! Offline stand-in for the `crossbeam` crate (channels only).
//!
//! Backed by `std::sync::mpsc`, whose `Sender` has been `Sync` since Rust
//! 1.72, which is all the MPI substrate needs: cloneable senders stored in
//! a shared registry, and receivers owned by exactly one rank's mailbox.

/// Multi-producer single-consumer channels (`crossbeam::channel` subset).
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel. Cloneable and shareable.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; fails only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(41).unwrap());
            std::thread::spawn(move || tx.send(1).unwrap());
            let sum: i32 = (0..2).map(|_| rx.recv().unwrap()).sum();
            assert_eq!(sum, 42);
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
