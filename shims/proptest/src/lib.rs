//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro over functions with `arg in strategy` parameters,
//! integer-range / tuple / [`collection::vec`] / [`bool::ANY`] strategies,
//! `prop_assert!` / `prop_assert_eq!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs via the assertion
//!   message but is not minimized.
//! * **Deterministic cases.** Inputs derive from a fixed per-test seed
//!   (hash of the test name), so CI failures always reproduce locally.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration (`cases` = number of sampled inputs per test).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for sampling one value (a radically simplified
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.random_range(0..span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.random_range(0..span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5)
);

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `elem` with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// The strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform `true` / `false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.random::<bool>()
        }
    }
}

/// Deterministic per-test RNG: FNV-1a of the test name.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                l,
                r
            ));
        }
    }};
}

/// Declares property tests: each function's `arg in strategy` parameters
/// are sampled [`ProptestConfig::cases`] times and the body is run per
/// case, with `prop_assert*` failures reported alongside the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        msg
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_vecs_compose(
            ops in crate::collection::vec((0u64..100, crate::bool::ANY), 1..20)
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for &(v, _b) in &ops {
                prop_assert!(v < 100);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_attr_is_honoured(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn per_test_rngs_are_deterministic() {
        use rand::Rng;
        let a = crate::rng_for("a").next_u64();
        let a2 = crate::rng_for("a").next_u64();
        let b = crate::rng_for("b").next_u64();
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }
}
