//! Offline stand-in for `serde_derive`.
//!
//! The real serde ecosystem is unavailable in this build environment, so
//! `#[derive(Serialize)]` expands to nothing: the companion `serde` shim
//! defines `Serialize` as a blanket-implemented marker trait, and all
//! actual serialization in this workspace goes through the hand-written
//! CSV writers in `dmr-metrics`.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the marker trait is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive, for symmetry.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
