//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the five bench targets compiling and runnable without crates.io:
//! same macro/entry-point shape (`criterion_group!` / `criterion_main!`,
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`]), but measurement is a
//! simple best-of-N wall-clock timer with one line of output per
//! benchmark — no statistics, plots, or saved baselines.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value wrapper.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup; informational in this shim.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units-processed-per-iteration annotation, echoed in the report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Runs one benchmark body repeatedly and records the best sample.
pub struct Bencher {
    samples: u32,
    best: Duration,
}

impl Bencher {
    fn new(samples: u32) -> Self {
        Bencher {
            samples,
            best: Duration::MAX,
        }
    }

    /// Times `routine` directly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            self.best = self.best.min(dt);
        }
    }

    /// Times `routine` on fresh input from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            self.best = self.best.min(dt);
        }
    }
}

fn report(name: &str, best: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if best > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / best.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if best > Duration::ZERO => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / best.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench: {name:<48} best {best:>12.3?}{rate}");
}

/// A named family of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the units processed per iteration for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many samples each bench takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into()),
            b.best,
            self.throughput,
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    sample_size: u32,
}

impl Criterion {
    fn effective_samples(&self) -> u32 {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.effective_samples());
        f(&mut b);
        report(id, b.best, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_samples();
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }
}

/// Bundles bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups (use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_sample() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4)).sample_size(3);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 4], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
